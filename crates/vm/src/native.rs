//! Native code-size models.
//!
//! The paper reports compression ratios against *native* code — MSVC 5.0
//! Pentium executables and SPARC code segments. We cannot ship 1997
//! binaries, so this module translates VM programs into two real native
//! encodings and measures their size:
//!
//! - [`X86Encoder`]: real x86-64 machine-code bytes (REX prefixes,
//!   ModRM, disp8/disp32, rel32 branches). The bytes are structurally
//!   valid encodings; they exist for size accounting and for measuring
//!   translation throughput ("JIT MB/s" is megabytes of *this* output
//!   per second), not for execution.
//! - [`fixed_width_size`]: a SPARC-like fixed 4-byte encoding where
//!   32-bit constants need a second instruction (`sethi`+`or`), the
//!   paper's wire-format baseline.

use crate::isa::{AluOp, Cond, Inst};
use crate::program::VmProgram;
use crate::reg::Reg;

/// Maps VM registers onto x86-64 registers (number 0–15).
///
/// `sp` maps to `rsp` (13 → r13 etc. shifted so the mapping is total).
fn x86_reg(r: Reg) -> u8 {
    // n0..n13 -> rax,rcx,rdx,rbx,rsi,rdi,r8..r15 is 14 registers; sp->rsp(4), ra->rbp(5).
    match r.number() {
        14 => 4,         // sp -> rsp
        15 => 5,         // ra -> rbp
        n if n < 4 => n, // rax, rcx, rdx, rbx
        4 => 6,          // rsi
        5 => 7,          // rdi
        n => n + 2,      // r8..r15 for n6..n13
    }
}

/// Emits x86-64 machine code for a VM program into a byte buffer.
///
/// Branch and call targets are emitted as rel32 placeholders (the size
/// model needs correct lengths, not a runnable image).
#[derive(Debug, Default)]
pub struct X86Encoder {
    out: Vec<u8>,
}

impl X86Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes emitted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.out
    }

    /// Consumes the encoder, returning the emitted code.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn rex_rr(&mut self, reg: u8, rm: u8) {
        let mut rex = 0x40u8;
        if reg >= 8 {
            rex |= 0x04;
        }
        if rm >= 8 {
            rex |= 0x01;
        }
        // 32-bit operations skip REX.W; emit REX only when extended
        // registers participate.
        if rex != 0x40 {
            self.out.push(rex);
        }
    }

    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.out.push((md << 6) | ((reg & 7) << 3) | (rm & 7));
    }

    /// `mov r32, imm32` (B8+rd id) — 5 or 6 bytes.
    fn mov_imm(&mut self, rd: u8, imm: i32) {
        if rd >= 8 {
            self.out.push(0x41);
        }
        self.out.push(0xB8 + (rd & 7));
        self.out.extend_from_slice(&imm.to_le_bytes());
    }

    /// Two-register ALU op (e.g. `add r/m32, r32`) — 2-3 bytes.
    fn alu_rr(&mut self, opcode: u8, reg: u8, rm: u8) {
        self.rex_rr(reg, rm);
        self.out.push(opcode);
        self.modrm(0b11, reg, rm);
    }

    /// Memory operand: `[base + disp]`, choosing disp8/disp32.
    fn mem_operand(&mut self, reg: u8, base: u8, disp: i32) {
        let needs_sib = (base & 7) == 4; // rsp/r12 need a SIB byte
        let md = if disp == 0 && (base & 7) != 5 {
            0b00
        } else if (-128..=127).contains(&disp) {
            0b01
        } else {
            0b10
        };
        self.modrm(md, reg, if needs_sib { 4 } else { base });
        if needs_sib {
            self.out.push(0x24); // scale=0, index=none, base=rsp
        }
        match md {
            0b01 => self.out.push(disp as u8),
            0b10 => self.out.extend_from_slice(&disp.to_le_bytes()),
            _ => {}
        }
    }

    /// Emits one VM instruction; returns bytes produced.
    pub fn emit(&mut self, inst: &Inst) -> usize {
        let before = self.out.len();
        match inst {
            Inst::Label(_) => {}
            Inst::Li { rd, imm } => self.mov_imm(x86_reg(*rd), *imm),
            Inst::Mov { rd, rs } => self.alu_rr(0x89, x86_reg(*rs), x86_reg(*rd)),
            Inst::Neg { rd, rs } => {
                if rd != rs {
                    self.alu_rr(0x89, x86_reg(*rs), x86_reg(*rd));
                }
                // F7 /3 neg
                self.rex_rr(0, x86_reg(*rd));
                self.out.push(0xF7);
                self.modrm(0b11, 3, x86_reg(*rd));
            }
            Inst::Not { rd, rs } => {
                if rd != rs {
                    self.alu_rr(0x89, x86_reg(*rs), x86_reg(*rd));
                }
                self.rex_rr(0, x86_reg(*rd));
                self.out.push(0xF7);
                self.modrm(0b11, 2, x86_reg(*rd));
            }
            Inst::Sext { width, rd, rs } => {
                // movsx r32, r/m8|16 (0F BE / 0F BF).
                self.rex_rr(x86_reg(*rd), x86_reg(*rs));
                self.out.push(0x0F);
                self.out.push(match width {
                    crate::isa::MemWidth::Byte => 0xBE,
                    _ => 0xBF,
                });
                self.modrm(0b11, x86_reg(*rd), x86_reg(*rs));
            }
            Inst::Alu { op, rd, rs, rt } => {
                // Two-address translation: mov rd, rs; op rd, rt.
                if rd != rs {
                    self.alu_rr(0x89, x86_reg(*rs), x86_reg(*rd));
                }
                match op {
                    AluOp::Add => self.alu_rr(0x01, x86_reg(*rt), x86_reg(*rd)),
                    AluOp::Sub => self.alu_rr(0x29, x86_reg(*rt), x86_reg(*rd)),
                    AluOp::And => self.alu_rr(0x21, x86_reg(*rt), x86_reg(*rd)),
                    AluOp::Or => self.alu_rr(0x09, x86_reg(*rt), x86_reg(*rd)),
                    AluOp::Xor => self.alu_rr(0x31, x86_reg(*rt), x86_reg(*rd)),
                    AluOp::Mul => {
                        // imul r32, r/m32: 0F AF /r.
                        self.rex_rr(x86_reg(*rd), x86_reg(*rt));
                        self.out.push(0x0F);
                        self.out.push(0xAF);
                        self.modrm(0b11, x86_reg(*rd), x86_reg(*rt));
                    }
                    AluOp::Div | AluOp::DivU | AluOp::Rem | AluOp::RemU => {
                        // Division sequence: mov eax; cdq/xor edx; idiv/div; mov back.
                        // Realistic cost: ~8 bytes.
                        self.out
                            .extend_from_slice(&[0x89, 0xC0, 0x99, 0xF7, 0xF8, 0x89, 0xC0]);
                        if x86_reg(*rd) >= 8 || x86_reg(*rt) >= 8 {
                            self.out.push(0x41);
                        }
                    }
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                        // mov ecx, rt; shl/shr/sar rd, cl — ~4-5 bytes.
                        self.alu_rr(0x89, x86_reg(*rt), 1);
                        self.rex_rr(0, x86_reg(*rd));
                        self.out.push(0xD3);
                        let ext = match op {
                            AluOp::Sll => 4,
                            AluOp::Srl => 5,
                            _ => 7,
                        };
                        self.modrm(0b11, ext, x86_reg(*rd));
                    }
                }
            }
            Inst::AluImm { op, rd, rs, imm } => {
                if rd != rs {
                    self.alu_rr(0x89, x86_reg(*rs), x86_reg(*rd));
                }
                match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                        // C1 /ext ib.
                        self.rex_rr(0, x86_reg(*rd));
                        self.out.push(0xC1);
                        let ext = match op {
                            AluOp::Sll => 4,
                            AluOp::Srl => 5,
                            _ => 7,
                        };
                        self.modrm(0b11, ext, x86_reg(*rd));
                        self.out.push(*imm as u8);
                    }
                    AluOp::Mul => {
                        // imul r32, r/m32, imm (69 /r id or 6B /r ib).
                        self.rex_rr(x86_reg(*rd), x86_reg(*rd));
                        if (-128..=127).contains(imm) {
                            self.out.push(0x6B);
                            self.modrm(0b11, x86_reg(*rd), x86_reg(*rd));
                            self.out.push(*imm as u8);
                        } else {
                            self.out.push(0x69);
                            self.modrm(0b11, x86_reg(*rd), x86_reg(*rd));
                            self.out.extend_from_slice(&imm.to_le_bytes());
                        }
                    }
                    _ => {
                        // Group-1: 83 /ext ib or 81 /ext id.
                        let ext = match op {
                            AluOp::Add => 0,
                            AluOp::Or => 1,
                            AluOp::And => 4,
                            AluOp::Sub => 5,
                            AluOp::Xor => 6,
                            // Divisions by immediate go through a register.
                            _ => 7,
                        };
                        self.rex_rr(0, x86_reg(*rd));
                        if (-128..=127).contains(imm) {
                            self.out.push(0x83);
                            self.modrm(0b11, ext, x86_reg(*rd));
                            self.out.push(*imm as u8);
                        } else {
                            self.out.push(0x81);
                            self.modrm(0b11, ext, x86_reg(*rd));
                            self.out.extend_from_slice(&imm.to_le_bytes());
                        }
                    }
                }
            }
            Inst::Load {
                width,
                rd,
                off,
                base,
            } => {
                self.rex_rr(x86_reg(*rd), x86_reg(*base));
                match width {
                    crate::isa::MemWidth::Word => self.out.push(0x8B),
                    crate::isa::MemWidth::Byte => {
                        self.out.push(0x0F);
                        self.out.push(0xBE);
                    }
                    crate::isa::MemWidth::Short => {
                        self.out.push(0x0F);
                        self.out.push(0xBF);
                    }
                }
                self.mem_operand(x86_reg(*rd), x86_reg(*base), *off);
            }
            Inst::Store {
                width,
                rs,
                off,
                base,
            } => {
                if *width == crate::isa::MemWidth::Short {
                    self.out.push(0x66); // operand-size prefix
                }
                self.rex_rr(x86_reg(*rs), x86_reg(*base));
                self.out.push(match width {
                    crate::isa::MemWidth::Byte => 0x88,
                    _ => 0x89,
                });
                self.mem_operand(x86_reg(*rs), x86_reg(*base), *off);
            }
            Inst::Spill { rs, off } => {
                self.rex_rr(x86_reg(*rs), 4);
                self.out.push(0x89);
                self.mem_operand(x86_reg(*rs), 4, *off);
            }
            Inst::Reload { rd, off } => {
                self.rex_rr(x86_reg(*rd), 4);
                self.out.push(0x8B);
                self.mem_operand(x86_reg(*rd), 4, *off);
            }
            Inst::Enter { amount } | Inst::Exit { amount } => {
                // sub/add rsp, imm (REX.W 83/81 /5 or /0).
                self.out.push(0x48);
                if (-128..=127).contains(amount) {
                    self.out.push(0x83);
                    self.modrm(
                        0b11,
                        if matches!(inst, Inst::Enter { .. }) {
                            5
                        } else {
                            0
                        },
                        4,
                    );
                    self.out.push(*amount as u8);
                } else {
                    self.out.push(0x81);
                    self.modrm(
                        0b11,
                        if matches!(inst, Inst::Enter { .. }) {
                            5
                        } else {
                            0
                        },
                        4,
                    );
                    self.out.extend_from_slice(&amount.to_le_bytes());
                }
            }
            Inst::Branch { cond, rs, rt, .. } => {
                // cmp rs, rt; jcc rel32.
                self.alu_rr(0x39, x86_reg(*rt), x86_reg(*rs));
                self.out.push(0x0F);
                self.out.push(jcc_opcode(*cond));
                self.out.extend_from_slice(&[0, 0, 0, 0]);
            }
            Inst::BranchImm { cond, rs, imm, .. } => {
                self.rex_rr(0, x86_reg(*rs));
                if (-128..=127).contains(imm) {
                    self.out.push(0x83);
                    self.modrm(0b11, 7, x86_reg(*rs));
                    self.out.push(*imm as u8);
                } else {
                    self.out.push(0x81);
                    self.modrm(0b11, 7, x86_reg(*rs));
                    self.out.extend_from_slice(&imm.to_le_bytes());
                }
                self.out.push(0x0F);
                self.out.push(jcc_opcode(*cond));
                self.out.extend_from_slice(&[0, 0, 0, 0]);
            }
            Inst::Jump { .. } => {
                self.out.push(0xE9);
                self.out.extend_from_slice(&[0, 0, 0, 0]);
            }
            Inst::Call { .. } => {
                self.out.push(0xE8);
                self.out.extend_from_slice(&[0, 0, 0, 0]);
            }
            Inst::CallR { rs } => {
                self.rex_rr(2, x86_reg(*rs));
                self.out.push(0xFF);
                self.modrm(0b11, 2, x86_reg(*rs));
            }
            Inst::Rjr { rs } => {
                if *rs == Reg::RA {
                    self.out.push(0xC3); // ret
                } else {
                    self.rex_rr(4, x86_reg(*rs));
                    self.out.push(0xFF);
                    self.modrm(0b11, 4, x86_reg(*rs));
                }
            }
            Inst::Epi => {
                // leave; ret — the compact epilogue.
                self.out.push(0xC9);
                self.out.push(0xC3);
            }
            Inst::Bcopy { .. } => {
                // mov rsi/rdi/rcx setup + rep movsb ≈ 9 bytes.
                self.out
                    .extend_from_slice(&[0x89, 0xC6, 0x89, 0xC7, 0x89, 0xC1, 0xF3, 0xA4]);
            }
            Inst::Bzero { .. } => {
                // xor eax; rep stosb setup ≈ 8 bytes.
                self.out
                    .extend_from_slice(&[0x31, 0xC0, 0x89, 0xC7, 0x89, 0xC1, 0xF3, 0xAA]);
            }
            Inst::Nop => self.out.push(0x90),
        }
        self.out.len() - before
    }

    /// Emits a whole program; returns total bytes.
    pub fn emit_program(&mut self, program: &VmProgram) -> usize {
        let before = self.out.len();
        for f in &program.functions {
            for inst in &f.code {
                self.emit(inst);
            }
        }
        self.out.len() - before
    }
}

fn jcc_opcode(cond: Cond) -> u8 {
    match cond {
        Cond::Eq => 0x84,
        Cond::Ne => 0x85,
        Cond::Lt => 0x8C,
        Cond::Le => 0x8E,
        Cond::Gt => 0x8F,
        Cond::Ge => 0x8D,
        Cond::LtU => 0x82,
        Cond::LeU => 0x86,
        Cond::GtU => 0x87,
        Cond::GeU => 0x83,
    }
}

/// Size of one VM program under x86-64 encoding.
pub fn x86_size(program: &VmProgram) -> usize {
    let mut enc = X86Encoder::new();
    enc.emit_program(program)
}

/// Size under a SPARC-like fixed-width RISC encoding: 4 bytes per
/// instruction, with an extra 4-byte instruction whenever a constant
/// does not fit in 13 signed bits (`sethi`+`or`), and a two-instruction
/// call sequence kept at 8 bytes (call + delay-slot nop).
pub fn fixed_width_size(program: &VmProgram) -> usize {
    let mut size = 0usize;
    for f in &program.functions {
        for inst in &f.code {
            size += match inst {
                Inst::Label(_) => 0,
                Inst::Li { imm, .. } => wide13(*imm, 4),
                Inst::AluImm { imm, .. } => wide13(*imm, 4),
                Inst::BranchImm { imm, .. } => wide13(*imm, 4) + 4, // cmp + branch
                Inst::Branch { .. } => 8,                           // cmp + branch
                Inst::Load { off, .. } | Inst::Store { off, .. } => wide13(*off, 4),
                Inst::Spill { off, .. } | Inst::Reload { off, .. } => wide13(*off, 4),
                Inst::Enter { amount } | Inst::Exit { amount } => wide13(*amount, 4),
                Inst::Call { .. } | Inst::CallR { .. } => 8, // call + delay slot
                Inst::Epi => 8,                              // restore + ret
                Inst::Bcopy { .. } | Inst::Bzero { .. } => 16, // short loop
                _ => 4,
            };
        }
    }
    size
}

fn wide13(v: i32, base: usize) -> usize {
    if (-4096..=4095).contains(&v) {
        base
    } else {
        base + 4
    }
}

/// Emits the fixed-width encoding as actual bytes (for gzip baselines):
/// each instruction becomes one or more 4-byte words with an opcode byte,
/// packed register fields, and immediate bits, in the layout
/// [`fixed_width_size`] charges for.
pub fn fixed_width_bytes(program: &VmProgram) -> Vec<u8> {
    fn word(out: &mut Vec<u8>, op: u8, a: u8, b: u8, c: u8) {
        out.extend_from_slice(&[op, a, b, c]);
    }
    let mut out = Vec::new();
    for f in &program.functions {
        for inst in &f.code {
            match inst {
                Inst::Label(_) => {}
                Inst::Li { rd, imm } => {
                    word(
                        &mut out,
                        0x01,
                        rd.number(),
                        (*imm & 0xFF) as u8,
                        ((*imm >> 8) & 0x1F) as u8,
                    );
                    if !(-4096..=4095).contains(imm) {
                        out.extend_from_slice(&imm.to_le_bytes());
                    }
                }
                Inst::Mov { rd, rs } => {
                    word(&mut out, 0x02, (rd.number() << 4) | rs.number(), 0, 0)
                }
                Inst::Alu { op, rd, rs, rt } => word(
                    &mut out,
                    0x10 + *op as u8,
                    (rd.number() << 4) | rs.number(),
                    rt.number(),
                    0,
                ),
                Inst::AluImm { op, rd, rs, imm } => {
                    word(
                        &mut out,
                        0x30 + *op as u8,
                        (rd.number() << 4) | rs.number(),
                        *imm as u8,
                        (*imm >> 8) as u8,
                    );
                    if !(-4096..=4095).contains(imm) {
                        out.extend_from_slice(&imm.to_le_bytes());
                    }
                }
                Inst::Neg { rd, rs } | Inst::Not { rd, rs } => {
                    word(&mut out, 0x03, (rd.number() << 4) | rs.number(), 0, 0)
                }
                Inst::Sext { rd, rs, .. } => {
                    word(&mut out, 0x04, (rd.number() << 4) | rs.number(), 0, 0)
                }
                Inst::Load { rd, off, base, .. }
                | Inst::Store {
                    rs: rd, off, base, ..
                } => {
                    word(
                        &mut out,
                        0x50,
                        (rd.number() << 4) | base.number(),
                        *off as u8,
                        (*off >> 8) as u8,
                    );
                    if !(-4096..=4095).contains(off) {
                        out.extend_from_slice(&off.to_le_bytes());
                    }
                }
                Inst::Spill { rs, off } => {
                    word(&mut out, 0x52, rs.number(), *off as u8, (*off >> 8) as u8);
                    if !(-4096..=4095).contains(off) {
                        out.extend_from_slice(&off.to_le_bytes());
                    }
                }
                Inst::Reload { rd, off } => {
                    word(&mut out, 0x53, rd.number(), *off as u8, (*off >> 8) as u8);
                    if !(-4096..=4095).contains(off) {
                        out.extend_from_slice(&off.to_le_bytes());
                    }
                }
                Inst::Enter { amount } | Inst::Exit { amount } => {
                    word(&mut out, 0x60, 0xEE, *amount as u8, (*amount >> 8) as u8);
                    if !(-4096..=4095).contains(amount) {
                        out.extend_from_slice(&amount.to_le_bytes());
                    }
                }
                Inst::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    word(
                        &mut out,
                        0x70 + *cond as u8,
                        (rs.number() << 4) | rt.number(),
                        0,
                        0,
                    );
                    word(&mut out, 0x7F, *target as u8, (*target >> 8) as u8, 0);
                }
                Inst::BranchImm {
                    cond,
                    rs,
                    imm,
                    target,
                } => {
                    word(
                        &mut out,
                        0x70 + *cond as u8,
                        rs.number(),
                        *imm as u8,
                        (*imm >> 8) as u8,
                    );
                    if !(-4096..=4095).contains(imm) {
                        out.extend_from_slice(&imm.to_le_bytes());
                    }
                    word(&mut out, 0x7F, *target as u8, (*target >> 8) as u8, 0);
                }
                Inst::Jump { target } => {
                    word(&mut out, 0x80, *target as u8, (*target >> 8) as u8, 0)
                }
                Inst::Call { .. } | Inst::CallR { .. } => {
                    word(&mut out, 0x81, 0, 0, 0);
                    word(&mut out, 0x00, 0, 0, 0); // delay slot
                }
                Inst::Rjr { rs } => word(&mut out, 0x82, rs.number(), 0, 0),
                Inst::Epi => {
                    word(&mut out, 0x83, 0, 0, 0);
                    word(&mut out, 0x82, Reg::RA.number(), 0, 0);
                }
                Inst::Bcopy { .. } | Inst::Bzero { .. } => {
                    for _ in 0..4 {
                        word(&mut out, 0x90, 0, 0, 0);
                    }
                }
                Inst::Nop => word(&mut out, 0x00, 0, 0, 0),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_inst;
    use crate::codegen::compile_module;
    use crate::isa::IsaConfig;
    use codecomp_front::compile;

    fn emit_one(text: &str) -> Vec<u8> {
        let mut enc = X86Encoder::new();
        enc.emit(&parse_inst(text, 1).unwrap());
        enc.into_bytes()
    }

    #[test]
    fn known_encodings() {
        // mov eax, 42 = B8 2A 00 00 00.
        assert_eq!(emit_one("li n0,42"), vec![0xB8, 0x2A, 0, 0, 0]);
        // mov ecx, eax (n1 <- n0) = 89 C1.
        assert_eq!(emit_one("mov.i n1,n0"), vec![0x89, 0xC1]);
        // add ecx, 1 = 83 C1 01.
        assert_eq!(emit_one("add.i n1,n1,1"), vec![0x83, 0xC1, 0x01]);
        // ret for rjr ra.
        assert_eq!(emit_one("rjr ra"), vec![0xC3]);
        // jmp rel32 = E9 + 4.
        assert_eq!(emit_one("j $L1").len(), 5);
        // enter sp,sp,24 -> sub rsp, 24 = 48 83 EC 18.
        assert_eq!(emit_one("enter sp,sp,24"), vec![0x48, 0x83, 0xEC, 0x18]);
    }

    #[test]
    fn load_uses_disp8_and_disp32() {
        let small = emit_one("ld.iw n0,4(n1)");
        let large = emit_one("ld.iw n0,1000(n1)");
        assert!(small.len() < large.len());
        // rsp base forces a SIB byte.
        let sp_based = emit_one("ld.iw n0,4(sp)");
        assert_eq!(sp_based, vec![0x8B, 0x44, 0x24, 0x04]);
    }

    #[test]
    fn labels_are_free() {
        let mut enc = X86Encoder::new();
        assert_eq!(enc.emit(&crate::isa::Inst::Label(1)), 0);
    }

    #[test]
    fn x86_is_denser_than_fixed_width_on_real_code() {
        let ir = compile(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { int i; int s = 0; for (i = 0; i < 20; i++) s += fib(i % 8); return s; }",
        )
        .unwrap();
        let p = compile_module(&ir, IsaConfig::full()).unwrap();
        let x86 = x86_size(&p);
        let fixed = fixed_width_size(&p);
        assert!(x86 > 0 && fixed > 0);
        // CISC variable-width encoding is denser than fixed 4-byte RISC,
        // as the paper's x86-vs-SPARC baseline sizes show.
        assert!(
            x86 < fixed,
            "x86 {x86} should be smaller than fixed-width {fixed}"
        );
    }

    #[test]
    fn fixed_width_bytes_match_the_size_model() {
        let ir = compile(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { int i; int s = 0; for (i = 0; i < 20; i++) s += fib(i % 8); return s; }",
        )
        .unwrap();
        let p = compile_module(&ir, IsaConfig::full()).unwrap();
        assert_eq!(fixed_width_bytes(&p).len(), fixed_width_size(&p));
    }

    #[test]
    fn emission_is_deterministic() {
        let ir = compile("int main() { return 1 + 2; }").unwrap();
        let p = compile_module(&ir, IsaConfig::full()).unwrap();
        let a = X86Encoder::new().emit_program(&p);
        let b = X86Encoder::new().emit_program(&p);
        assert_eq!(a, b);
    }
}
