//! The instruction set.

use crate::reg::Reg;
use std::fmt;

/// ALU operation selectors shared by register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    Div,
    /// Unsigned division.
    DivU,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::DivU,
        AluOp::Rem,
        AluOp::RemU,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
    ];

    /// The mnemonic stem (`add`, `divu`, …).
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::DivU => "divu",
            AluOp::Rem => "rem",
            AluOp::RemU => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned less-or-equal.
    LeU,
    /// Unsigned greater-than.
    GtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// All conditions.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::LtU,
        Cond::LeU,
        Cond::GtU,
        Cond::GeU,
    ];

    /// The mnemonic stem (`beq` prints as `beq.i`).
    pub fn name(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
            Cond::LtU => "bltu",
            Cond::LeU => "bleu",
            Cond::GtU => "bgtu",
            Cond::GeU => "bgeu",
        }
    }

    /// Evaluates the condition on 32-bit truncated operands.
    pub fn holds(self, a: i64, b: i64) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        let (ua, ub) = (a as u32, b as u32);
        match self {
            Cond::Eq => sa == sb,
            Cond::Ne => sa != sb,
            Cond::Lt => sa < sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
            Cond::Ge => sa >= sb,
            Cond::LtU => ua < ub,
            Cond::LeU => ua <= ub,
            Cond::GtU => ua > ub,
            Cond::GeU => ua >= ub,
        }
    }
}

/// Memory access widths (`.iw`, `.is`, `.ib` suffixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 8-bit, sign-extending on load.
    Byte,
    /// 16-bit, sign-extending on load.
    Short,
    /// 32-bit word.
    Word,
}

impl MemWidth {
    /// Bytes accessed.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Short => 2,
            MemWidth::Word => 4,
        }
    }

    /// The mnemonic suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::Byte => "ib",
            MemWidth::Short => "is",
            MemWidth::Word => "iw",
        }
    }
}

/// A function reference in a `call`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FuncRef {
    /// A function in the same program, by name (resolved at link).
    Symbol(String),
}

/// One VM instruction.
///
/// `Label` is a zero-byte pseudo-instruction; branch targets are label
/// numbers resolved against it. Everything else encodes per
/// [`crate::encode`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `li rd, imm` — load immediate (the one immediate primitive that
    /// survives de-tuning).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// `mov.i rd, rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `op.i rd, rs, rt` — three-register ALU.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
    },
    /// `op.i rd, rs, imm` — ALU with immediate (absent when de-tuned).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs: Reg,
        /// Immediate right operand.
        imm: i32,
    },
    /// `neg.i rd, rs`.
    Neg {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `not.i rd, rs` — bitwise complement.
    Not {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `sext.ib rd, rs` / `sext.is` — sign-extend the low 8/16 bits.
    Sext {
        /// Width to extend from ([`MemWidth::Word`] is invalid).
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `ld.iw rd, off(rb)` — load (register-displacement; absent when
    /// de-tuned, where only `off == 0` survives).
    Load {
        /// Access width.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Displacement.
        off: i32,
        /// Base register.
        base: Reg,
    },
    /// `st.iw rs, off(rb)` — store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        rs: Reg,
        /// Displacement.
        off: i32,
        /// Base register.
        base: Reg,
    },
    /// `spill.i rs, off(sp)` — callee-saved spill (always sp-based).
    Spill {
        /// Register being saved.
        rs: Reg,
        /// Frame offset.
        off: i32,
    },
    /// `reload.i rd, off(sp)`.
    Reload {
        /// Register being restored.
        rd: Reg,
        /// Frame offset.
        off: i32,
    },
    /// `enter sp,sp,N` — allocate an `N`-byte frame.
    Enter {
        /// Frame size in bytes.
        amount: i32,
    },
    /// `exit sp,sp,N` — release the frame.
    Exit {
        /// Frame size in bytes.
        amount: i32,
    },
    /// `bcc.i rs, rt, $L` — compare-and-branch, register form.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs: Reg,
        /// Right operand.
        rt: Reg,
        /// Target label number.
        target: u32,
    },
    /// `bcc.i rs, imm, $L` — compare-and-branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        rs: Reg,
        /// Immediate right operand.
        imm: i32,
        /// Target label number.
        target: u32,
    },
    /// `j $L` — unconditional jump.
    Jump {
        /// Target label number.
        target: u32,
    },
    /// `call f`.
    Call {
        /// Callee.
        target: FuncRef,
    },
    /// `callr rs` — indirect call through a register.
    CallR {
        /// Register holding the function address.
        rs: Reg,
    },
    /// `rjr rs` — jump through a register (function return is `rjr ra`).
    Rjr {
        /// Register holding the return address.
        rs: Reg,
    },
    /// `epi` — macro epilogue: restore callee-saved registers and `ra`
    /// from their conventional slots, release the frame, and return.
    Epi,
    /// `bcopy rd, rs, rn` — macro block copy of `rn` bytes.
    Bcopy {
        /// Destination address register.
        rd: Reg,
        /// Source address register.
        rs: Reg,
        /// Length register.
        rn: Reg,
    },
    /// `bzero rd, rn` — macro block zero of `rn` bytes.
    Bzero {
        /// Destination address register.
        rd: Reg,
        /// Length register.
        rn: Reg,
    },
    /// `nop`.
    Nop,
    /// `$L:` — label definition (zero bytes).
    Label(u32),
}

impl Inst {
    /// Whether this is the zero-size label pseudo-instruction.
    pub fn is_label(&self) -> bool {
        matches!(self, Inst::Label(_))
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Inst::Jump { .. } | Inst::Rjr { .. } | Inst::Epi)
    }

    /// Whether this instruction starts a basic block boundary after it
    /// (branches, jumps, calls, returns).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::BranchImm { .. }
                | Inst::Jump { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
                | Inst::Rjr { .. }
                | Inst::Epi
        )
    }
}

/// Which optional ISA conveniences are available — the §5 de-tuning axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsaConfig {
    /// ALU-immediate and branch-immediate forms are available.
    pub immediates: bool,
    /// Register-displacement addressing (`off(rb)` with `off != 0`,
    /// including `spill`/`reload`) is available.
    pub reg_displacement: bool,
}

impl IsaConfig {
    /// The full RISC (paper row "RISC").
    pub fn full() -> Self {
        Self {
            immediates: true,
            reg_displacement: true,
        }
    }

    /// "minus immediates".
    pub fn no_immediates() -> Self {
        Self {
            immediates: false,
            reg_displacement: true,
        }
    }

    /// "minus register-displacement".
    pub fn no_reg_displacement() -> Self {
        Self {
            immediates: true,
            reg_displacement: false,
        }
    }

    /// "minus both" — the minimal abstract machine.
    pub fn minimal() -> Self {
        Self {
            immediates: false,
            reg_displacement: false,
        }
    }

    /// All four variants in the paper's table order.
    pub fn variants() -> [(&'static str, IsaConfig); 4] {
        [
            ("RISC", IsaConfig::full()),
            ("minus immediates", IsaConfig::no_immediates()),
            (
                "minus register-displacement",
                IsaConfig::no_reg_displacement(),
            ),
            ("minus both", IsaConfig::minimal()),
        ]
    }
}

impl Default for IsaConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl fmt::Display for IsaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.immediates, self.reg_displacement) {
            (true, true) => write!(f, "RISC"),
            (false, true) => write!(f, "RISC minus immediates"),
            (true, false) => write!(f, "RISC minus register-displacement"),
            (false, false) => write!(f, "RISC minus both"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_semantics() {
        assert!(Cond::Lt.holds(-1, 0));
        assert!(!Cond::LtU.holds(-1, 0), "-1 is big unsigned");
        assert!(Cond::GtU.holds(-1, 0));
        assert!(Cond::Le.holds(3, 3));
        assert!(Cond::Ge.holds(3, 3));
        assert!(Cond::Ne.holds(1, 2));
        assert!(
            Cond::Eq.holds(i64::from(u32::MAX) + 1, 0),
            "compare truncates to 32 bits"
        );
    }

    #[test]
    fn block_structure_predicates() {
        assert!(Inst::Jump { target: 1 }.ends_block());
        assert!(!Inst::Jump { target: 1 }.falls_through());
        assert!(Inst::Call {
            target: FuncRef::Symbol("f".into())
        }
        .falls_through());
        assert!(Inst::Call {
            target: FuncRef::Symbol("f".into())
        }
        .ends_block());
        assert!(Inst::Nop.falls_through());
        assert!(!Inst::Epi.falls_through());
        assert!(Inst::Label(3).is_label());
    }

    #[test]
    fn isa_variants_cover_the_paper_table() {
        let v = IsaConfig::variants();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].1, IsaConfig::full());
        assert_eq!(v[3].1, IsaConfig::minimal());
        assert_eq!(IsaConfig::full().to_string(), "RISC");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Short.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
