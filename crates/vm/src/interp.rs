//! The VM interpreter.
//!
//! Execution semantics reference for the compressed tiers: the BRISC
//! direct interpreter and the translated fast tier must produce the same
//! results this interpreter does. Instrumentation (per-instruction
//! execution counts) feeds the working-set experiments.

use crate::isa::{AluOp, Cond, FuncRef, Inst, MemWidth};
use crate::program::{FlatProgram, VmProgram};
use crate::reg::Reg;
use crate::VmError;
use std::collections::HashMap;

/// Pseudo-address base for program functions (shared with the IR evaluator).
pub const FUNC_BASE: u32 = 0x0100_0000;
/// Pseudo-address base for host functions.
pub const HOST_BASE: u32 = FUNC_BASE + 0x10_0000;
/// Pseudo-address base for return addresses (`RA_BASE + pc`).
pub const RA_BASE: u32 = 0x0200_0000;
/// The return address that terminates the entry function.
pub const DONE: u32 = 0x03FF_FFFF;
/// Lowest address handed to globals.
pub const GLOBAL_BASE: u32 = 16;

/// The result of a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The entry function's return value (register `n0`).
    pub value: i64,
    /// Bytes written through the host print functions.
    pub output: Vec<u8>,
    /// Instructions executed.
    pub instructions: u64,
    /// Calls performed.
    pub calls: u64,
}

/// An executable machine instance over a linked program.
#[derive(Debug)]
pub struct Machine {
    flat: FlatProgram,
    mem: Vec<u8>,
    global_addrs: HashMap<String, u32>,
    func_index: HashMap<String, usize>,
    regs: [i64; 16],
    output: Vec<u8>,
    fuel: u64,
    instructions: u64,
    calls: u64,
    /// Execution count per flat-code index (for working-set analysis).
    pub exec_counts: Vec<u64>,
}

impl Machine {
    /// Links `program` and prepares memory and globals.
    ///
    /// # Errors
    ///
    /// Link errors, or [`VmError::Exec`] if globals do not fit.
    pub fn new(program: &VmProgram, mem_size: u32, fuel: u64) -> Result<Self, VmError> {
        let flat = FlatProgram::link(program)?;
        Self::from_flat(flat, mem_size, fuel)
    }

    /// Builds a machine from an already-linked program.
    ///
    /// # Errors
    ///
    /// [`VmError::Exec`] if globals do not fit in `mem_size`.
    pub fn from_flat(flat: FlatProgram, mem_size: u32, fuel: u64) -> Result<Self, VmError> {
        let mut mem = vec![0u8; mem_size as usize];
        let mut global_addrs = HashMap::new();
        let mut next = GLOBAL_BASE;
        for g in &flat.globals {
            let aligned = next.div_ceil(4) * 4;
            if u64::from(aligned) + u64::from(g.size) > u64::from(mem_size) {
                return Err(VmError::Exec(format!("global {} does not fit", g.name)));
            }
            let start = aligned as usize;
            let n = g.init.len().min(g.size as usize);
            mem[start..start + n].copy_from_slice(&g.init[..n]);
            global_addrs.insert(g.name.clone(), aligned);
            next = aligned + g.size;
        }
        let func_index = flat
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let exec_counts = vec![0u64; flat.code.len()];
        Ok(Self {
            flat,
            mem,
            global_addrs,
            func_index,
            regs: [0; 16],
            output: Vec::new(),
            fuel,
            instructions: 0,
            calls: 0,
            exec_counts,
        })
    }

    /// The pseudo-address of a global or function symbol.
    pub fn symbol_addr(&self, name: &str) -> Option<u32> {
        if let Some(&a) = self.global_addrs.get(name) {
            return Some(a);
        }
        if let Some(&i) = self.func_index.get(name) {
            return Some(FUNC_BASE + i as u32);
        }
        codecomp_ir::eval::HOST_FUNCTIONS
            .iter()
            .position(|&h| h == name)
            .map(|i| HOST_BASE + i as u32)
    }

    /// Runs `entry` with the given arguments.
    ///
    /// # Errors
    ///
    /// [`VmError::Exec`] on faults, missing functions, or fuel exhaustion.
    pub fn run(&mut self, entry: &str, args: &[i64]) -> Result<RunOutcome, VmError> {
        let entry_idx = *self
            .func_index
            .get(entry)
            .ok_or_else(|| VmError::Exec(format!("undefined entry function {entry}")))?;
        // Pseudo-caller: stage arguments per the calling convention.
        let staging = (args.len().max(1) as u32) * 4;
        let top = (self.mem.len() as u32 & !3) - staging;
        self.set_reg(Reg::SP, i64::from(top));
        for (i, &a) in args.iter().enumerate() {
            self.store(top + 4 * i as u32, MemWidth::Word, a)?;
        }
        for (i, &a) in args.iter().take(4).enumerate() {
            self.regs[i] = a;
        }
        self.set_reg(Reg::RA, i64::from(RA_BASE + DONE));
        let mut pc = self.flat.ranges[entry_idx].0;
        self.calls += 1;
        loop {
            if self.fuel == 0 {
                return Err(VmError::Exec("fuel exhausted".into()));
            }
            self.fuel -= 1;
            if pc >= self.flat.code.len() {
                return Err(VmError::Exec(format!("pc {pc} out of code range")));
            }
            self.instructions += 1;
            self.exec_counts[pc] += 1;
            let inst = self.flat.code[pc].clone();
            pc = match self.step(&inst, pc)? {
                Next::Fall => pc + 1,
                Next::Goto(p) => p,
                Next::Done => {
                    return Ok(RunOutcome {
                        value: self.regs[0],
                        output: std::mem::take(&mut self.output),
                        instructions: self.instructions,
                        calls: self.calls,
                    });
                }
            };
        }
    }

    fn reg(&self, r: Reg) -> i64 {
        self.regs[usize::from(r.number())]
    }

    fn set_reg(&mut self, r: Reg, v: i64) {
        self.regs[usize::from(r.number())] = i64::from(v as i32);
    }

    fn step(&mut self, inst: &Inst, pc: usize) -> Result<Next, VmError> {
        match inst {
            Inst::Li { rd, imm } => {
                self.set_reg(*rd, i64::from(*imm));
                Ok(Next::Fall)
            }
            Inst::Mov { rd, rs } => {
                self.set_reg(*rd, self.reg(*rs));
                Ok(Next::Fall)
            }
            Inst::Alu { op, rd, rs, rt } => {
                let v = alu(*op, self.reg(*rs), self.reg(*rt))?;
                self.set_reg(*rd, v);
                Ok(Next::Fall)
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = alu(*op, self.reg(*rs), i64::from(*imm))?;
                self.set_reg(*rd, v);
                Ok(Next::Fall)
            }
            Inst::Neg { rd, rs } => {
                self.set_reg(*rd, -self.reg(*rs));
                Ok(Next::Fall)
            }
            Inst::Not { rd, rs } => {
                self.set_reg(*rd, !self.reg(*rs));
                Ok(Next::Fall)
            }
            Inst::Sext { width, rd, rs } => {
                let v = self.reg(*rs);
                let v = match width {
                    MemWidth::Byte => i64::from(v as i8),
                    MemWidth::Short => i64::from(v as i16),
                    MemWidth::Word => i64::from(v as i32),
                };
                self.set_reg(*rd, v);
                Ok(Next::Fall)
            }
            Inst::Load {
                width,
                rd,
                off,
                base,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*off as u32);
                let v = self.load(addr, *width)?;
                self.set_reg(*rd, v);
                Ok(Next::Fall)
            }
            Inst::Store {
                width,
                rs,
                off,
                base,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*off as u32);
                self.store(addr, *width, self.reg(*rs))?;
                Ok(Next::Fall)
            }
            Inst::Spill { rs, off } => {
                let addr = (self.reg(Reg::SP) as u32).wrapping_add(*off as u32);
                self.store(addr, MemWidth::Word, self.reg(*rs))?;
                Ok(Next::Fall)
            }
            Inst::Reload { rd, off } => {
                let addr = (self.reg(Reg::SP) as u32).wrapping_add(*off as u32);
                let v = self.load(addr, MemWidth::Word)?;
                self.set_reg(*rd, v);
                Ok(Next::Fall)
            }
            Inst::Enter { amount } => {
                self.set_reg(Reg::SP, self.reg(Reg::SP) - i64::from(*amount));
                Ok(Next::Fall)
            }
            Inst::Exit { amount } => {
                self.set_reg(Reg::SP, self.reg(Reg::SP) + i64::from(*amount));
                Ok(Next::Fall)
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                if cond.holds(self.reg(*rs), self.reg(*rt)) {
                    Ok(Next::Goto(*target as usize))
                } else {
                    Ok(Next::Fall)
                }
            }
            Inst::BranchImm {
                cond,
                rs,
                imm,
                target,
            } => {
                if cond.holds(self.reg(*rs), i64::from(*imm)) {
                    Ok(Next::Goto(*target as usize))
                } else {
                    Ok(Next::Fall)
                }
            }
            Inst::Jump { target } => Ok(Next::Goto(*target as usize)),
            Inst::Call {
                target: FuncRef::Symbol(name),
            } => {
                let addr = self
                    .symbol_addr(name)
                    .ok_or_else(|| VmError::Exec(format!("undefined call target {name}")))?;
                self.call_addr(addr, pc)
            }
            Inst::CallR { rs } => {
                let addr = self.reg(*rs) as u32;
                self.call_addr(addr, pc)
            }
            Inst::Rjr { rs } => {
                let v = self.reg(*rs) as u32;
                self.jump_addr(v)
            }
            Inst::Epi => {
                let fidx = self
                    .flat
                    .function_at(pc)
                    .ok_or_else(|| VmError::Exec("epi outside any function".into()))?;
                let f = &self.flat.functions[fidx];
                let frame = f.frame_size;
                let saved = f.saved_regs.clone();
                let ra_slot = f.ra_slot();
                let slots: Vec<(Reg, i32)> = saved
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (r, f.saved_slot(i)))
                    .collect();
                let sp = self.reg(Reg::SP) as u32;
                for (r, slot) in slots {
                    let v = self.load(sp.wrapping_add(slot as u32), MemWidth::Word)?;
                    self.set_reg(r, v);
                }
                let ra = self.load(sp.wrapping_add(ra_slot as u32), MemWidth::Word)?;
                self.set_reg(Reg::RA, ra);
                self.set_reg(Reg::SP, i64::from(sp) + i64::from(frame));
                self.jump_addr(ra as u32)
            }
            Inst::Bcopy { rd, rs, rn } => {
                let dst = self.reg(*rd) as u32;
                let src = self.reg(*rs) as u32;
                let n = self.reg(*rn) as u32;
                for i in 0..n {
                    let b = self.load(src.wrapping_add(i), MemWidth::Byte)?;
                    self.store(dst.wrapping_add(i), MemWidth::Byte, b)?;
                }
                Ok(Next::Fall)
            }
            Inst::Bzero { rd, rn } => {
                let dst = self.reg(*rd) as u32;
                let n = self.reg(*rn) as u32;
                for i in 0..n {
                    self.store(dst.wrapping_add(i), MemWidth::Byte, 0)?;
                }
                Ok(Next::Fall)
            }
            Inst::Nop => Ok(Next::Fall),
            Inst::Label(_) => Err(VmError::Exec("label reached execution".into())),
        }
    }

    fn call_addr(&mut self, addr: u32, pc: usize) -> Result<Next, VmError> {
        self.calls += 1;
        if addr >= RA_BASE {
            return Err(VmError::Exec("call to a return address".into()));
        }
        if addr >= HOST_BASE {
            let idx = (addr - HOST_BASE) as usize;
            self.host_call(idx)?;
            return Ok(Next::Fall);
        }
        if addr >= FUNC_BASE {
            let idx = (addr - FUNC_BASE) as usize;
            let start = self
                .flat
                .ranges
                .get(idx)
                .ok_or_else(|| VmError::Exec(format!("bad function address {addr:#x}")))?
                .0;
            self.set_reg(Reg::RA, i64::from(RA_BASE) + (pc as i64 + 1));
            return Ok(Next::Goto(start));
        }
        Err(VmError::Exec(format!(
            "call to non-function address {addr:#x}"
        )))
    }

    fn jump_addr(&mut self, addr: u32) -> Result<Next, VmError> {
        if addr == RA_BASE + DONE {
            return Ok(Next::Done);
        }
        if addr >= RA_BASE {
            let pc = (addr - RA_BASE) as usize;
            if pc > self.flat.code.len() {
                return Err(VmError::Exec(format!("bad return address {addr:#x}")));
            }
            return Ok(Next::Goto(pc));
        }
        Err(VmError::Exec(format!("jump to non-code address {addr:#x}")))
    }

    fn host_call(&mut self, idx: usize) -> Result<(), VmError> {
        match codecomp_ir::eval::HOST_FUNCTIONS.get(idx) {
            Some(&"print_int") => {
                let v = self.regs[0] as i32;
                self.output.extend_from_slice(v.to_string().as_bytes());
                self.output.push(b'\n');
                self.regs[0] = 0;
                Ok(())
            }
            Some(&"print_char") => {
                self.output.push(self.regs[0] as u8);
                self.regs[0] = 0;
                Ok(())
            }
            _ => Err(VmError::Exec(format!("bad host function index {idx}"))),
        }
    }

    fn load(&self, addr: u32, width: MemWidth) -> Result<i64, VmError> {
        let a = addr as usize;
        let size = width.bytes() as usize;
        if a == 0 || a + size > self.mem.len() {
            return Err(VmError::Exec(format!(
                "bad load of {size} bytes at {addr:#x}"
            )));
        }
        Ok(match width {
            MemWidth::Byte => i64::from(self.mem[a] as i8),
            MemWidth::Short => i64::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::Word => i64::from(i32::from_le_bytes([
                self.mem[a],
                self.mem[a + 1],
                self.mem[a + 2],
                self.mem[a + 3],
            ])),
        })
    }

    fn store(&mut self, addr: u32, width: MemWidth, value: i64) -> Result<(), VmError> {
        let a = addr as usize;
        let size = width.bytes() as usize;
        if a == 0 || a + size > self.mem.len() {
            return Err(VmError::Exec(format!(
                "bad store of {size} bytes at {addr:#x}"
            )));
        }
        match width {
            MemWidth::Byte => self.mem[a] = value as u8,
            MemWidth::Short => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => self.mem[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        }
        Ok(())
    }
}

enum Next {
    Fall,
    Goto(usize),
    Done,
}

fn alu(op: AluOp, a: i64, b: i64) -> Result<i64, VmError> {
    let (sa, sb) = (a as i32, b as i32);
    let (ua, ub) = (a as u32, b as u32);
    let v: i32 = match op {
        AluOp::Add => sa.wrapping_add(sb),
        AluOp::Sub => sa.wrapping_sub(sb),
        AluOp::Mul => sa.wrapping_mul(sb),
        AluOp::Div => {
            if sb == 0 {
                return Err(VmError::Exec("division by zero".into()));
            }
            sa.wrapping_div(sb)
        }
        AluOp::DivU => {
            if ub == 0 {
                return Err(VmError::Exec("division by zero".into()));
            }
            (ua / ub) as i32
        }
        AluOp::Rem => {
            if sb == 0 {
                return Err(VmError::Exec("remainder by zero".into()));
            }
            sa.wrapping_rem(sb)
        }
        AluOp::RemU => {
            if ub == 0 {
                return Err(VmError::Exec("remainder by zero".into()));
            }
            (ua % ub) as i32
        }
        AluOp::And => sa & sb,
        AluOp::Or => sa | sb,
        AluOp::Xor => sa ^ sb,
        AluOp::Sll => ((ua) << (ub & 31)) as i32,
        AluOp::Srl => (ua >> (ub & 31)) as i32,
        AluOp::Sra => sa >> (ub & 31),
    };
    Ok(i64::from(v))
}

/// Evaluates the machine ALU outside a machine (used by the BRISC tiers
/// so all tiers share one arithmetic definition).
///
/// # Errors
///
/// [`VmError::Exec`] on division by zero.
pub fn alu_eval(op: AluOp, a: i64, b: i64) -> Result<i64, VmError> {
    alu(op, a, b)
}

/// Shared condition evaluation (identical to [`Cond::holds`], re-exported
/// for symmetry with [`alu_eval`]).
pub fn cond_eval(cond: Cond, a: i64, b: i64) -> bool {
    cond.holds(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_program;

    fn run(text: &str, entry: &str, args: &[i64]) -> RunOutcome {
        let p = parse_program(text).unwrap();
        Machine::new(&p, 1 << 20, 1 << 24)
            .unwrap()
            .run(entry, args)
            .unwrap()
    }

    #[test]
    fn li_and_return() {
        let out = run(
            ".func main params=0 frame=0\n    li n0,42\n    rjr ra\n.end\n",
            "main",
            &[],
        );
        assert_eq!(out.value, 42);
        assert_eq!(out.instructions, 2);
    }

    #[test]
    fn loop_sums() {
        let text = "\
.func main params=0 frame=0
    li n0,0
    li n1,1
$L1:
    bgt.i n1,10,$L2
    add.i n0,n0,n1
    add.i n1,n1,1
    j $L1
$L2:
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, 55);
    }

    #[test]
    fn calls_and_frames() {
        let text = "\
.func double params=1 frame=0
    add.i n0,n0,n0
    rjr ra
.end
.func main params=0 frame=8
    enter sp,sp,8
    spill.i ra,4(sp)
    li n0,21
    call double
    reload.i ra,4(sp)
    exit sp,sp,8
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, 42);
    }

    #[test]
    fn epi_restores_and_returns() {
        let text = "\
.func leaf params=0 frame=0
    li n0,7
    rjr ra
.end
.func main params=0 frame=24 saves=n4
    enter sp,sp,24
    spill.i n4,16(sp)
    spill.i ra,20(sp)
    li n4,30
    call leaf
    add.i n0,n0,n4
    epi
.end
";
        let out = run(text, "main", &[]);
        assert_eq!(out.value, 37);
    }

    #[test]
    fn the_papers_salt_function_runs() {
        // The exact §4 OmniVM listing for salt(j, i), plus a pepper stub.
        let text = "\
.func pepper params=2 frame=0
    add.i n0,n0,n1
    rjr ra
.end
.func salt params=2 frame=24 saves=n4
    enter sp,sp,24
    spill.i n4,16(sp)
    spill.i ra,20(sp)
    mov.i n4,n0
    mov.i n2,n1
    ble.i n4,0,$L56
    mov.i n1,n4
    mov.i n0,n2
    call pepper
$L56:
    add.i n0,n4,-1
    reload.i n4,16(sp)
    reload.i ra,20(sp)
    exit sp,sp,24
    rjr ra
.end
";
        // salt(j=3, i=9) = j - 1 = 2; salt(0, 9) = -1.
        assert_eq!(run(text, "salt", &[3, 9]).value, 2);
        assert_eq!(run(text, "salt", &[0, 9]).value, -1);
    }

    #[test]
    fn memory_widths_sign_extend() {
        let text = "\
.global g 4 200 0 0 0
.func main params=0 frame=0
    li n1,16
    ld.ib n0,0(n1)
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, -56);
    }

    #[test]
    fn stores_and_loads() {
        let text = "\
.func main params=0 frame=16
    enter sp,sp,16
    li n1,-300
    st.is n1,2(sp)
    ld.is n0,2(sp)
    exit sp,sp,16
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, -300);
    }

    #[test]
    fn host_output() {
        let text = "\
.func main params=0 frame=8
    enter sp,sp,8
    spill.i ra,4(sp)
    li n0,123
    call print_int
    li n0,65
    call print_char
    reload.i ra,4(sp)
    exit sp,sp,8
    li n0,0
    rjr ra
.end
";
        let out = run(text, "main", &[]);
        assert_eq!(out.output, b"123\nA");
    }

    #[test]
    fn block_macros() {
        let text = "\
.global src 4 9 8 7 6
.global dst 4
.func main params=0 frame=0
    li n0,24
    li n1,16
    li n2,4
    bcopy n0,n1,n2
    ld.ib n0,0(n0)
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, 9);
    }

    #[test]
    fn unsigned_branches() {
        let text = "\
.func main params=0 frame=0
    li n1,-1
    li n0,0
    bgtu.i n1,100,$L1
    rjr ra
$L1:
    li n0,1
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[]).value, 1);
    }

    #[test]
    fn faults_detected() {
        let div0 = ".func main params=0 frame=0\n    li n0,1\n    li n1,0\n    div.i n0,n0,n1\n    rjr ra\n.end\n";
        let p = parse_program(div0).unwrap();
        assert!(Machine::new(&p, 1 << 16, 1000)
            .unwrap()
            .run("main", &[])
            .is_err());

        let null =
            ".func main params=0 frame=0\n    li n1,0\n    ld.iw n0,0(n1)\n    rjr ra\n.end\n";
        let p = parse_program(null).unwrap();
        assert!(Machine::new(&p, 1 << 16, 1000)
            .unwrap()
            .run("main", &[])
            .is_err());

        let spin = ".func main params=0 frame=0\n$L1:\n    j $L1\n.end\n";
        let p = parse_program(spin).unwrap();
        assert!(Machine::new(&p, 1 << 16, 1000)
            .unwrap()
            .run("main", &[])
            .is_err());
    }

    #[test]
    fn entry_args_arrive_in_registers_and_stack() {
        let text = "\
.func main params=6 frame=0
    ld.iw n4,16(sp)
    ld.iw n5,20(sp)
    add.i n0,n0,n1
    add.i n0,n0,n2
    add.i n0,n0,n3
    add.i n0,n0,n4
    add.i n0,n0,n5
    rjr ra
.end
";
        assert_eq!(run(text, "main", &[1, 2, 3, 4, 5, 6]).value, 21);
    }

    #[test]
    fn exec_counts_recorded() {
        let p =
            parse_program(".func main params=0 frame=0\n    li n0,1\n    rjr ra\n.end\n").unwrap();
        let m = Machine::new(&p, 1 << 16, 1000).unwrap();
        let flat_len = m.exec_counts.len();
        assert_eq!(flat_len, 2);
    }
}
