//! Linked VM programs.

use crate::isa::{FuncRef, Inst, IsaConfig};
use crate::reg::Reg;
use crate::VmError;
use std::collections::HashMap;

/// A global data definition (same shape as the IR's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmGlobal {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initializer bytes (zero-filled beyond).
    pub init: Vec<u8>,
}

/// One compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct VmFunction {
    /// Name.
    pub name: String,
    /// Declared parameter count.
    pub param_count: usize,
    /// Frame size in bytes (what `enter`/`exit`/`epi` use).
    pub frame_size: u32,
    /// Callee-saved registers this function spills, in spill order.
    /// Their conventional slots are `frame_size - 8 - 4*i`; `ra` lives at
    /// `frame_size - 4`.
    pub saved_regs: Vec<Reg>,
    /// Instructions, including `Label` pseudo-instructions.
    pub code: Vec<Inst>,
}

impl VmFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, param_count: usize, frame_size: u32) -> Self {
        Self {
            name: name.into(),
            param_count,
            frame_size,
            saved_regs: Vec::new(),
            code: Vec::new(),
        }
    }

    /// The conventional frame slot of `ra`.
    pub fn ra_slot(&self) -> i32 {
        self.frame_size as i32 - 4
    }

    /// The conventional frame slot of the `i`-th saved register.
    pub fn saved_slot(&self, i: usize) -> i32 {
        self.frame_size as i32 - 8 - 4 * i as i32
    }

    /// Maps label numbers to instruction indices.
    ///
    /// # Errors
    ///
    /// [`VmError::Codegen`] on duplicate labels.
    pub fn label_map(&self) -> Result<HashMap<u32, usize>, VmError> {
        let mut map = HashMap::new();
        for (i, inst) in self.code.iter().enumerate() {
            if let Inst::Label(l) = inst {
                if map.insert(*l, i).is_some() {
                    return Err(VmError::Codegen(format!(
                        "duplicate label {l} in {}",
                        self.name
                    )));
                }
            }
        }
        Ok(map)
    }

    /// Real (non-label) instruction count.
    pub fn inst_count(&self) -> usize {
        self.code.iter().filter(|i| !i.is_label()).count()
    }

    /// Checks that all branch targets resolve.
    ///
    /// # Errors
    ///
    /// [`VmError::Codegen`] naming the unresolved label.
    pub fn validate(&self) -> Result<(), VmError> {
        let labels = self.label_map()?;
        for inst in &self.code {
            let target = match inst {
                Inst::Branch { target, .. }
                | Inst::BranchImm { target, .. }
                | Inst::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                if !labels.contains_key(&t) {
                    return Err(VmError::Codegen(format!(
                        "unresolved label {t} in {}",
                        self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A linked program: globals plus functions, with the ISA configuration
/// the code was generated under.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProgram {
    /// Global data.
    pub globals: Vec<VmGlobal>,
    /// Functions.
    pub functions: Vec<VmFunction>,
    /// The ISA variant in force.
    pub isa: IsaConfig,
}

impl VmProgram {
    /// Creates an empty program under the full ISA.
    pub fn new() -> Self {
        Self {
            globals: Vec::new(),
            functions: Vec::new(),
            isa: IsaConfig::full(),
        }
    }

    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&VmFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total real instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(VmFunction::inst_count).sum()
    }

    /// Validates labels and call targets.
    ///
    /// # Errors
    ///
    /// [`VmError::Codegen`] on the first unresolved label or call target
    /// that is neither a program function nor a host function.
    pub fn validate(&self) -> Result<(), VmError> {
        for f in &self.functions {
            f.validate()?;
            for inst in &f.code {
                if let Inst::Call {
                    target: FuncRef::Symbol(name),
                } = inst
                {
                    if self.function_index(name).is_none()
                        && !codecomp_ir::eval::HOST_FUNCTIONS.contains(&name.as_str())
                    {
                        return Err(VmError::Codegen(format!(
                            "call to undefined function {name} from {}",
                            f.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for VmProgram {
    fn default() -> Self {
        Self::new()
    }
}

/// A program flattened into one code space, ready for interpretation:
/// labels resolved to absolute instruction indices and label
/// pseudo-instructions removed.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// All instructions, label-free, with branch/jump targets rewritten
    /// to absolute indices (in `Branch::target` etc.).
    pub code: Vec<Inst>,
    /// Per-function `(start, end)` index ranges, parallel to `functions`.
    pub ranges: Vec<(usize, usize)>,
    /// Function metadata (same order as the source program).
    pub functions: Vec<VmFunction>,
    /// Globals.
    pub globals: Vec<VmGlobal>,
}

impl FlatProgram {
    /// Flattens and link-resolves a program.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn link(program: &VmProgram) -> Result<FlatProgram, VmError> {
        program.validate()?;
        let mut code = Vec::new();
        let mut ranges = Vec::new();
        for f in &program.functions {
            let start = code.len();
            // First pass: label → absolute index among non-label insts.
            let mut labels = HashMap::new();
            let mut idx = start;
            for inst in &f.code {
                match inst {
                    Inst::Label(l) => {
                        labels.insert(*l, idx);
                    }
                    _ => idx += 1,
                }
            }
            for inst in &f.code {
                let rewritten = match inst {
                    Inst::Label(_) => continue,
                    Inst::Branch {
                        cond,
                        rs,
                        rt,
                        target,
                    } => Inst::Branch {
                        cond: *cond,
                        rs: *rs,
                        rt: *rt,
                        target: labels[target] as u32,
                    },
                    Inst::BranchImm {
                        cond,
                        rs,
                        imm,
                        target,
                    } => Inst::BranchImm {
                        cond: *cond,
                        rs: *rs,
                        imm: *imm,
                        target: labels[target] as u32,
                    },
                    Inst::Jump { target } => Inst::Jump {
                        target: labels[target] as u32,
                    },
                    other => other.clone(),
                };
                code.push(rewritten);
            }
            ranges.push((start, code.len()));
        }
        Ok(FlatProgram {
            code,
            ranges,
            functions: program.functions.clone(),
            globals: program.globals.clone(),
        })
    }

    /// The function whose code contains absolute index `pc`.
    pub fn function_at(&self, pc: usize) -> Option<usize> {
        self.ranges.iter().position(|&(s, e)| pc >= s && pc < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    fn branchy_function() -> VmFunction {
        let mut f = VmFunction::new("f", 0, 8);
        f.code = vec![
            Inst::Li {
                rd: Reg::new(0),
                imm: 0,
            },
            Inst::Label(1),
            Inst::BranchImm {
                cond: Cond::Ge,
                rs: Reg::new(0),
                imm: 5,
                target: 2,
            },
            Inst::AluImm {
                op: crate::isa::AluOp::Add,
                rd: Reg::new(0),
                rs: Reg::new(0),
                imm: 1,
            },
            Inst::Jump { target: 1 },
            Inst::Label(2),
            Inst::Rjr { rs: Reg::RA },
        ];
        f
    }

    #[test]
    fn label_map_and_counts() {
        let f = branchy_function();
        let map = f.label_map().unwrap();
        assert_eq!(map[&1], 1);
        assert_eq!(map[&2], 5);
        assert_eq!(f.inst_count(), 5);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut f = VmFunction::new("f", 0, 0);
        f.code = vec![Inst::Label(1), Inst::Label(1)];
        assert!(f.label_map().is_err());
    }

    #[test]
    fn unresolved_target_rejected() {
        let mut f = VmFunction::new("f", 0, 0);
        f.code = vec![Inst::Jump { target: 9 }];
        assert!(f.validate().is_err());
    }

    #[test]
    fn frame_slots() {
        let mut f = VmFunction::new("f", 0, 24);
        f.saved_regs = vec![Reg::new(4)];
        assert_eq!(f.ra_slot(), 20);
        assert_eq!(f.saved_slot(0), 16);
    }

    #[test]
    fn link_rewrites_targets_to_absolute_indices() {
        let mut p = VmProgram::new();
        p.functions.push(branchy_function());
        p.functions.push({
            let mut g = VmFunction::new("g", 0, 0);
            g.code = vec![Inst::Label(1), Inst::Jump { target: 1 }];
            g
        });
        let flat = FlatProgram::link(&p).unwrap();
        assert_eq!(flat.ranges[0], (0, 5));
        assert_eq!(flat.ranges[1], (5, 6));
        // f's loop jump goes to absolute index 1.
        assert_eq!(flat.code[3], Inst::Jump { target: 1 });
        // g's self-loop goes to absolute index 5, not 0.
        assert_eq!(flat.code[5], Inst::Jump { target: 5 });
        assert_eq!(flat.function_at(2), Some(0));
        assert_eq!(flat.function_at(5), Some(1));
        assert_eq!(flat.function_at(6), None);
    }

    #[test]
    fn undefined_call_target_rejected() {
        let mut p = VmProgram::new();
        let mut f = VmFunction::new("f", 0, 0);
        f.code = vec![Inst::Call {
            target: FuncRef::Symbol("nowhere".into()),
        }];
        p.functions.push(f);
        assert!(p.validate().is_err());
    }

    #[test]
    fn host_calls_are_valid_targets() {
        let mut p = VmProgram::new();
        let mut f = VmFunction::new("f", 0, 0);
        f.code = vec![Inst::Call {
            target: FuncRef::Symbol("print_int".into()),
        }];
        p.functions.push(f);
        assert!(p.validate().is_ok());
    }
}
