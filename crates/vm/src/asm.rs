//! Assembly text form: printing and parsing.
//!
//! The syntax follows the paper's examples: `ld.iw n0,4(sp)`,
//! `spill.i ra,20(sp)`, `ble.i n4,0,$L56`, `enter sp,sp,24`, `rjr ra`.
//! Labels print as `$L<n>:` on their own line.

use crate::isa::{AluOp, Cond, FuncRef, Inst, MemWidth};
use crate::program::{VmFunction, VmGlobal, VmProgram};
use crate::reg::Reg;
use crate::VmError;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Li { rd, imm } => write!(f, "li {rd},{imm}"),
            Inst::Mov { rd, rs } => write!(f, "mov.i {rd},{rs}"),
            Inst::Alu { op, rd, rs, rt } => write!(f, "{}.i {rd},{rs},{rt}", op.name()),
            Inst::AluImm { op, rd, rs, imm } => write!(f, "{}.i {rd},{rs},{imm}", op.name()),
            Inst::Neg { rd, rs } => write!(f, "neg.i {rd},{rs}"),
            Inst::Not { rd, rs } => write!(f, "not.i {rd},{rs}"),
            Inst::Sext { width, rd, rs } => write!(f, "sext.{} {rd},{rs}", width.suffix()),
            Inst::Load {
                width,
                rd,
                off,
                base,
            } => {
                write!(f, "ld.{} {rd},{off}({base})", width.suffix())
            }
            Inst::Store {
                width,
                rs,
                off,
                base,
            } => {
                write!(f, "st.{} {rs},{off}({base})", width.suffix())
            }
            Inst::Spill { rs, off } => write!(f, "spill.i {rs},{off}(sp)"),
            Inst::Reload { rd, off } => write!(f, "reload.i {rd},{off}(sp)"),
            Inst::Enter { amount } => write!(f, "enter sp,sp,{amount}"),
            Inst::Exit { amount } => write!(f, "exit sp,sp,{amount}"),
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                write!(f, "{}.i {rs},{rt},$L{target}", cond.name())
            }
            Inst::BranchImm {
                cond,
                rs,
                imm,
                target,
            } => {
                write!(f, "{}.i {rs},{imm},$L{target}", cond.name())
            }
            Inst::Jump { target } => write!(f, "j $L{target}"),
            Inst::Call {
                target: FuncRef::Symbol(name),
            } => write!(f, "call {name}"),
            Inst::CallR { rs } => write!(f, "callr {rs}"),
            Inst::Rjr { rs } => write!(f, "rjr {rs}"),
            Inst::Epi => write!(f, "epi"),
            Inst::Bcopy { rd, rs, rn } => write!(f, "bcopy {rd},{rs},{rn}"),
            Inst::Bzero { rd, rn } => write!(f, "bzero {rd},{rn}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Label(l) => write!(f, "$L{l}:"),
        }
    }
}

impl fmt::Display for VmFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            ".func {} params={} frame={}",
            self.name, self.param_count, self.frame_size
        )?;
        if !self.saved_regs.is_empty() {
            write!(f, " saves=")?;
            for (i, r) in self.saved_regs.iter().enumerate() {
                if i > 0 {
                    write!(f, "+")?;
                }
                write!(f, "{r}")?;
            }
        }
        writeln!(f)?;
        for inst in &self.code {
            if inst.is_label() {
                writeln!(f, "{inst}")?;
            } else {
                writeln!(f, "    {inst}")?;
            }
        }
        write!(f, ".end")
    }
}

impl fmt::Display for VmProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            write!(f, ".global {} {}", g.name, g.size)?;
            for b in &g.init {
                write!(f, " {b}")?;
            }
            writeln!(f)?;
        }
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

/// Parses one instruction line (no label-colon form).
///
/// # Errors
///
/// [`VmError::Asm`] with the given line number on failure.
pub fn parse_inst(text: &str, line: u32) -> Result<Inst, VmError> {
    let err = |m: &str| VmError::Asm {
        line,
        message: m.to_string(),
    };
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("$L") {
        let rest = rest
            .strip_suffix(':')
            .ok_or_else(|| err("label must end with ':'"))?;
        let n: u32 = rest.parse().map_err(|_| err("bad label number"))?;
        return Ok(Inst::Label(n));
    }
    let (mnemonic, operands) = match text.split_once(char::is_whitespace) {
        Some((m, rest)) => (m, rest.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };
    let reg = |s: &str| Reg::from_name(s).ok_or_else(|| err(&format!("bad register {s:?}")));
    let imm = |s: &str| {
        s.parse::<i32>()
            .map_err(|_| err(&format!("bad immediate {s:?}")))
    };
    let label = |s: &str| {
        s.strip_prefix("$L")
            .and_then(|t| t.parse::<u32>().ok())
            .ok_or_else(|| err(&format!("bad label {s:?}")))
    };
    // `off(base)` operand.
    let mem = |s: &str| -> Result<(i32, Reg), VmError> {
        let open = s.find('(').ok_or_else(|| err("expected off(reg)"))?;
        let close = s
            .strip_suffix(')')
            .ok_or_else(|| err("expected closing ')'"))?;
        let off = imm(&s[..open])?;
        let base = reg(&close[open + 1..])?;
        Ok((off, base))
    };
    let need = |n: usize| -> Result<(), VmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(&format!("expected {n} operands, got {}", ops.len())))
        }
    };

    match mnemonic {
        "li" => {
            need(2)?;
            Ok(Inst::Li {
                rd: reg(ops[0])?,
                imm: imm(ops[1])?,
            })
        }
        "mov.i" => {
            need(2)?;
            Ok(Inst::Mov {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
            })
        }
        "neg.i" => {
            need(2)?;
            Ok(Inst::Neg {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
            })
        }
        "not.i" => {
            need(2)?;
            Ok(Inst::Not {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
            })
        }
        "sext.ib" | "sext.is" => {
            need(2)?;
            let width = if mnemonic.ends_with('b') {
                MemWidth::Byte
            } else {
                MemWidth::Short
            };
            Ok(Inst::Sext {
                width,
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
            })
        }
        "ld.iw" | "ld.is" | "ld.ib" | "st.iw" | "st.is" | "st.ib" => {
            need(2)?;
            let width = match &mnemonic[3..] {
                "iw" => MemWidth::Word,
                "is" => MemWidth::Short,
                _ => MemWidth::Byte,
            };
            let (off, base) = mem(ops[1])?;
            if mnemonic.starts_with("ld") {
                Ok(Inst::Load {
                    width,
                    rd: reg(ops[0])?,
                    off,
                    base,
                })
            } else {
                Ok(Inst::Store {
                    width,
                    rs: reg(ops[0])?,
                    off,
                    base,
                })
            }
        }
        "spill.i" => {
            need(2)?;
            let (off, base) = mem(ops[1])?;
            if base != Reg::SP {
                return Err(err("spill base must be sp"));
            }
            Ok(Inst::Spill {
                rs: reg(ops[0])?,
                off,
            })
        }
        "reload.i" => {
            need(2)?;
            let (off, base) = mem(ops[1])?;
            if base != Reg::SP {
                return Err(err("reload base must be sp"));
            }
            Ok(Inst::Reload {
                rd: reg(ops[0])?,
                off,
            })
        }
        "enter" | "exit" => {
            need(3)?;
            if reg(ops[0])? != Reg::SP || reg(ops[1])? != Reg::SP {
                return Err(err("enter/exit operate on sp,sp"));
            }
            let amount = imm(ops[2])?;
            if mnemonic == "enter" {
                Ok(Inst::Enter { amount })
            } else {
                Ok(Inst::Exit { amount })
            }
        }
        "j" => {
            need(1)?;
            Ok(Inst::Jump {
                target: label(ops[0])?,
            })
        }
        "call" => {
            need(1)?;
            Ok(Inst::Call {
                target: FuncRef::Symbol(ops[0].to_string()),
            })
        }
        "callr" => {
            need(1)?;
            Ok(Inst::CallR { rs: reg(ops[0])? })
        }
        "rjr" => {
            need(1)?;
            Ok(Inst::Rjr { rs: reg(ops[0])? })
        }
        "epi" => {
            need(0)?;
            Ok(Inst::Epi)
        }
        "nop" => {
            need(0)?;
            Ok(Inst::Nop)
        }
        "bcopy" => {
            need(3)?;
            Ok(Inst::Bcopy {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
                rn: reg(ops[2])?,
            })
        }
        "bzero" => {
            need(2)?;
            Ok(Inst::Bzero {
                rd: reg(ops[0])?,
                rn: reg(ops[1])?,
            })
        }
        _ => {
            // ALU and branch families: `<stem>.i`.
            let stem = mnemonic
                .strip_suffix(".i")
                .ok_or_else(|| err(&format!("unknown mnemonic {mnemonic:?}")))?;
            if let Some(op) = AluOp::ALL.iter().copied().find(|o| o.name() == stem) {
                need(3)?;
                let rd = reg(ops[0])?;
                let rs = reg(ops[1])?;
                return if let Ok(rt) = reg(ops[2]) {
                    Ok(Inst::Alu { op, rd, rs, rt })
                } else {
                    Ok(Inst::AluImm {
                        op,
                        rd,
                        rs,
                        imm: imm(ops[2])?,
                    })
                };
            }
            if let Some(cond) = Cond::ALL.iter().copied().find(|c| c.name() == stem) {
                need(3)?;
                let rs = reg(ops[0])?;
                let target = label(ops[2])?;
                return if let Ok(rt) = reg(ops[1]) {
                    Ok(Inst::Branch {
                        cond,
                        rs,
                        rt,
                        target,
                    })
                } else {
                    Ok(Inst::BranchImm {
                        cond,
                        rs,
                        imm: imm(ops[1])?,
                        target,
                    })
                };
            }
            Err(err(&format!("unknown mnemonic {mnemonic:?}")))
        }
    }
}

/// Parses a whole program in the `Display` format of [`VmProgram`].
///
/// # Errors
///
/// [`VmError::Asm`] on the first malformed line.
pub fn parse_program(text: &str) -> Result<VmProgram, VmError> {
    let mut program = VmProgram::new();
    let mut current: Option<VmFunction> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let line = raw.trim();
        let err = |m: &str| VmError::Asm {
            line: lineno,
            message: m.to_string(),
        };
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".global ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err("global needs a name"))?
                .to_string();
            let size: u32 = parts
                .next()
                .ok_or_else(|| err("global needs a size"))?
                .parse()
                .map_err(|_| err("bad global size"))?;
            let mut init = Vec::new();
            for tok in parts {
                init.push(tok.parse::<u8>().map_err(|_| err("bad init byte"))?);
            }
            program.globals.push(VmGlobal { name, size, init });
        } else if let Some(rest) = line.strip_prefix(".func ") {
            if current.is_some() {
                return Err(err("nested .func"));
            }
            let mut name = None;
            let mut params = 0usize;
            let mut frame = 0u32;
            let mut saves = Vec::new();
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("params=") {
                    params = v.parse().map_err(|_| err("bad params="))?;
                } else if let Some(v) = tok.strip_prefix("frame=") {
                    frame = v.parse().map_err(|_| err("bad frame="))?;
                } else if let Some(v) = tok.strip_prefix("saves=") {
                    for r in v.split('+') {
                        saves.push(Reg::from_name(r).ok_or_else(|| err("bad saves="))?);
                    }
                } else if name.is_none() {
                    name = Some(tok.to_string());
                } else {
                    return Err(err(&format!("unexpected token {tok:?} in .func")));
                }
            }
            let mut f = VmFunction::new(
                name.ok_or_else(|| err(".func needs a name"))?,
                params,
                frame,
            );
            f.saved_regs = saves;
            current = Some(f);
        } else if line == ".end" {
            let f = current.take().ok_or_else(|| err(".end without .func"))?;
            program.functions.push(f);
        } else {
            let f = current
                .as_mut()
                .ok_or_else(|| err("instruction outside .func"))?;
            f.code.push(parse_inst(line, lineno)?);
        }
    }
    if current.is_some() {
        return Err(VmError::Asm {
            line: 0,
            message: "unterminated .func".into(),
        });
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::IsaConfig;

    #[test]
    fn paper_example_instructions_roundtrip() {
        // The exact instruction sequence the paper shows for `salt` (§4).
        let lines = [
            "enter sp,sp,24",
            "spill.i n4,16(sp)",
            "spill.i ra,20(sp)",
            "mov.i n4,n0",
            "mov.i n2,n1",
            "ble.i n4,0,$L56",
            "mov.i n1,n4",
            "mov.i n0,n2",
            "call pepper",
            "$L56:",
            "add.i n0,n4,-1",
            "reload.i n4,16(sp)",
            "reload.i ra,20(sp)",
            "exit sp,sp,24",
            "rjr ra",
        ];
        for l in lines {
            let inst = parse_inst(l, 1).unwrap();
            assert_eq!(inst.to_string(), l, "roundtrip failed for {l}");
        }
    }

    #[test]
    fn alu_and_branch_forms_disambiguate() {
        assert!(matches!(
            parse_inst("add.i n0,n1,n2", 1).unwrap(),
            Inst::Alu { .. }
        ));
        assert!(matches!(
            parse_inst("add.i n0,n1,-7", 1).unwrap(),
            Inst::AluImm { imm: -7, .. }
        ));
        assert!(matches!(
            parse_inst("blt.i n0,n1,$L3", 1).unwrap(),
            Inst::Branch { .. }
        ));
        assert!(matches!(
            parse_inst("blt.i n0,100,$L3", 1).unwrap(),
            Inst::BranchImm { imm: 100, .. }
        ));
    }

    #[test]
    fn memory_forms() {
        assert_eq!(
            parse_inst("ld.iw n0,4(sp)", 1).unwrap().to_string(),
            "ld.iw n0,4(sp)"
        );
        assert_eq!(
            parse_inst("st.ib n3,-2(n5)", 1).unwrap().to_string(),
            "st.ib n3,-2(n5)"
        );
        assert_eq!(
            parse_inst("ld.is n1,0(n2)", 1).unwrap().to_string(),
            "ld.is n1,0(n2)"
        );
    }

    #[test]
    fn macros_and_misc() {
        for l in [
            "epi",
            "nop",
            "bcopy n0,n1,n2",
            "bzero n0,n1",
            "callr n3",
            "j $L7",
            "li n0,123456",
            "sext.ib n1,n1",
            "neg.i n2,n3",
            "not.i n4,n4",
        ] {
            assert_eq!(parse_inst(l, 1).unwrap().to_string(), l);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_inst("frob n0", 1).is_err());
        assert!(parse_inst("add.i n0,n1", 1).is_err());
        assert!(parse_inst("li n99,3", 1).is_err());
        assert!(parse_inst("spill.i n4,16(n3)", 1).is_err());
        assert!(parse_inst("enter sp,n0,24", 1).is_err());
        assert!(parse_inst("$L5", 1).is_err());
    }

    #[test]
    fn program_roundtrip() {
        let text = "\
.global buf 16 1 2 3
.func main params=0 frame=24 saves=n4+n5
    enter sp,sp,24
    spill.i n4,12(sp)
$L1:
    ble.i n4,0,$L2
    j $L1
$L2:
    epi
.end
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.functions[0].saved_regs.len(), 2);
        assert_eq!(p.functions[0].inst_count(), 5);
        let printed = p.to_string();
        let reparsed = parse_program(&printed).unwrap();
        // IsaConfig is not part of the text form.
        assert_eq!(reparsed.functions, p.functions);
        assert_eq!(reparsed.globals, p.globals);
        assert_eq!(p.isa, IsaConfig::full());
    }

    #[test]
    fn program_errors() {
        assert!(parse_program(".end").is_err());
        assert!(parse_program("nop").is_err());
        assert!(parse_program(".func f params=0 frame=0\nnop").is_err());
    }
}
