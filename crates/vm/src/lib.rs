//! An OmniVM-style register virtual machine.
//!
//! The BRISC compressor (paper §4) operates on "fully linked executable
//! programs containing OmniVM RISC instructions": a RISC instruction set
//! with 16 integer registers (`sp` and `ra` are two of them, so every
//! register field fits in four bits) "augmented with macro-instructions
//! for common operations". This crate builds that machine:
//!
//! - [`isa`]: the instruction set, including the de-tuning knobs of the
//!   paper's §5 experiment (immediate instructions and
//!   register-displacement addressing can be disabled).
//! - [`asm`]: the assembly text form used throughout the paper
//!   (`ld.iw n0,4(sp)`, `spill.i ra,20(sp)`, `ble.i n4,0,$L56`, …),
//!   both printing and parsing.
//! - [`program`]: linked programs — functions, labels, a flat code space.
//! - [`encode`]: the quantized byte encoding whose size is the "VM code"
//!   input measure for BRISC.
//! - [`codegen`]: the IR → VM compiler with callee-saved register
//!   promotion, producing the prologue/spill/reload/epilogue idioms the
//!   paper's example shows.
//! - [`interp`]: the interpreter (the execution-semantics reference for
//!   the BRISC tiers), with instruction counters and code-touch
//!   instrumentation for working-set experiments.
//! - [`native`]: native code-size models — a variable-width x86-64
//!   encoder and a fixed-width RISC ("SPARC-like") encoder — used as the
//!   paper's native-code baselines.
//!
//! # Examples
//!
//! ```
//! use codecomp_front::compile;
//! use codecomp_vm::codegen::compile_module;
//! use codecomp_vm::interp::Machine;
//! use codecomp_vm::isa::IsaConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ir = compile("int main() { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }")?;
//! let program = compile_module(&ir, IsaConfig::full())?;
//! let outcome = Machine::new(&program, 1 << 20, 1 << 24)?.run("main", &[])?;
//! assert_eq!(outcome.value, 55);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod codegen;
pub mod encode;
pub mod interp;
pub mod isa;
pub mod native;
pub mod program;
pub mod reg;

pub use interp::{Machine, RunOutcome};
pub use isa::{Inst, IsaConfig};
pub use program::{VmFunction, VmProgram};
pub use reg::Reg;

use std::error::Error;
use std::fmt;

/// Errors across the VM crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// Code generation failed.
    Codegen(String),
    /// Assembly parsing failed.
    Asm {
        /// 1-based line number in the assembly text.
        line: u32,
        /// Problem description.
        message: String,
    },
    /// Binary encode/decode failed.
    Encode(String),
    /// Execution failed.
    Exec(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Codegen(m) => write!(f, "code generation error: {m}"),
            VmError::Asm { line, message } => write!(f, "assembly error at line {line}: {message}"),
            VmError::Encode(m) => write!(f, "encoding error: {m}"),
            VmError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl Error for VmError {}
