//! The quantized byte encoding of VM programs.
//!
//! This is the *uncompressed* OmniVM executable form that BRISC takes as
//! input: one opcode byte per instruction, register fields packed two to
//! a byte (16 registers → 4 bits each), immediates in the narrowest of
//! 1/2/4 bytes (selected by the opcode variant), branch targets and
//! function symbols in 2 bytes. Under this layout `enter sp,sp,24`
//! occupies 3 bytes, matching the paper's worked example.
//!
//! The module also exposes the *field view* ([`base_op`], [`fields`],
//! [`rebuild`]) that the BRISC compressor patternizes over: a base
//! instruction pattern is a [`BaseOp`] with every field wildcarded, and
//! operand specialization burns [`Field`] values in one at a time.

use crate::isa::{AluOp, Cond, FuncRef, Inst, MemWidth};
use crate::program::{VmFunction, VmGlobal, VmProgram};
use crate::reg::Reg;
use crate::VmError;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Base-pattern identity: the mnemonic with all operand fields wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseOp {
    /// `li *,*`
    Li,
    /// `mov.i *,*`
    Mov,
    /// `<op>.i *,*,*`
    Alu(AluOp),
    /// `<op>.i *,*,imm`
    AluImm(AluOp),
    /// `neg.i *,*`
    Neg,
    /// `not.i *,*`
    Not,
    /// `sext.* *,*`
    Sext(MemWidth),
    /// `ld.* *,*(*)`
    Load(MemWidth),
    /// `st.* *,*(*)`
    Store(MemWidth),
    /// `spill.i *,*(sp)`
    Spill,
    /// `reload.i *,*(sp)`
    Reload,
    /// `enter *,*,*`
    Enter,
    /// `exit *,*,*`
    Exit,
    /// `b<cond>.i *,*,$L`
    Branch(Cond),
    /// `b<cond>.i *,imm,$L`
    BranchImm(Cond),
    /// `j $L`
    Jump,
    /// `call f`
    Call,
    /// `callr *`
    CallR,
    /// `rjr *`
    Rjr,
    /// `epi`
    Epi,
    /// `bcopy *,*,*`
    Bcopy,
    /// `bzero *,*`
    Bzero,
    /// `nop`
    Nop,
}

impl BaseOp {
    /// Every base pattern, in canonical order.
    pub fn all() -> Vec<BaseOp> {
        let mut v = vec![BaseOp::Li, BaseOp::Mov];
        for op in AluOp::ALL {
            v.push(BaseOp::Alu(op));
        }
        for op in AluOp::ALL {
            v.push(BaseOp::AluImm(op));
        }
        v.push(BaseOp::Neg);
        v.push(BaseOp::Not);
        v.push(BaseOp::Sext(MemWidth::Byte));
        v.push(BaseOp::Sext(MemWidth::Short));
        for w in [MemWidth::Byte, MemWidth::Short, MemWidth::Word] {
            v.push(BaseOp::Load(w));
        }
        for w in [MemWidth::Byte, MemWidth::Short, MemWidth::Word] {
            v.push(BaseOp::Store(w));
        }
        v.extend([BaseOp::Spill, BaseOp::Reload, BaseOp::Enter, BaseOp::Exit]);
        for c in Cond::ALL {
            v.push(BaseOp::Branch(c));
        }
        for c in Cond::ALL {
            v.push(BaseOp::BranchImm(c));
        }
        v.extend([
            BaseOp::Jump,
            BaseOp::Call,
            BaseOp::CallR,
            BaseOp::Rjr,
            BaseOp::Epi,
            BaseOp::Bcopy,
            BaseOp::Bzero,
            BaseOp::Nop,
        ]);
        v
    }

    /// The mnemonic this base pattern prints with.
    pub fn mnemonic(self) -> String {
        match self {
            BaseOp::Li => "li".into(),
            BaseOp::Mov => "mov.i".into(),
            BaseOp::Alu(op) | BaseOp::AluImm(op) => format!("{}.i", op.name()),
            BaseOp::Neg => "neg.i".into(),
            BaseOp::Not => "not.i".into(),
            BaseOp::Sext(w) => format!("sext.{}", w.suffix()),
            BaseOp::Load(w) => format!("ld.{}", w.suffix()),
            BaseOp::Store(w) => format!("st.{}", w.suffix()),
            BaseOp::Spill => "spill.i".into(),
            BaseOp::Reload => "reload.i".into(),
            BaseOp::Enter => "enter".into(),
            BaseOp::Exit => "exit".into(),
            BaseOp::Branch(c) | BaseOp::BranchImm(c) => format!("{}.i", c.name()),
            BaseOp::Jump => "j".into(),
            BaseOp::Call => "call".into(),
            BaseOp::CallR => "callr".into(),
            BaseOp::Rjr => "rjr".into(),
            BaseOp::Epi => "epi".into(),
            BaseOp::Bcopy => "bcopy".into(),
            BaseOp::Bzero => "bzero".into(),
            BaseOp::Nop => "nop".into(),
        }
    }
}

/// One operand field value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// A 4-bit register field.
    Reg(Reg),
    /// An immediate (1/2/4-byte encoded).
    Imm(i32),
    /// A branch target label (2 bytes).
    Target(u32),
    /// A function symbol (2-byte index into the program symbol table).
    Func(String),
}

impl Field {
    /// Field width in bits in the base encoding.
    pub fn bits(&self) -> u32 {
        match self {
            Field::Reg(_) => 4,
            Field::Imm(v) => imm_width(*v).bits(),
            Field::Target(_) | Field::Func(_) => 16,
        }
    }
}

/// Immediate width variants selected by the opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ImmWidth {
    /// No immediate field.
    None,
    /// Signed 8-bit.
    W8,
    /// Signed 16-bit.
    W16,
    /// 32-bit.
    W32,
}

impl ImmWidth {
    /// Bits occupied.
    pub fn bits(self) -> u32 {
        match self {
            ImmWidth::None => 0,
            ImmWidth::W8 => 8,
            ImmWidth::W16 => 16,
            ImmWidth::W32 => 32,
        }
    }
}

/// The narrowest width holding `v`.
pub fn imm_width(v: i32) -> ImmWidth {
    if (-128..=127).contains(&v) {
        ImmWidth::W8
    } else if (-32_768..=32_767).contains(&v) {
        ImmWidth::W16
    } else {
        ImmWidth::W32
    }
}

/// Whether this base pattern has an immediate operand field.
pub fn has_imm(op: BaseOp) -> bool {
    matches!(
        op,
        BaseOp::Li
            | BaseOp::AluImm(_)
            | BaseOp::Load(_)
            | BaseOp::Store(_)
            | BaseOp::Spill
            | BaseOp::Reload
            | BaseOp::Enter
            | BaseOp::Exit
            | BaseOp::BranchImm(_)
    )
}

/// The base pattern of an instruction.
///
/// # Panics
///
/// Panics on [`Inst::Label`], which is a pseudo-instruction.
pub fn base_op(inst: &Inst) -> BaseOp {
    match inst {
        Inst::Li { .. } => BaseOp::Li,
        Inst::Mov { .. } => BaseOp::Mov,
        Inst::Alu { op, .. } => BaseOp::Alu(*op),
        Inst::AluImm { op, .. } => BaseOp::AluImm(*op),
        Inst::Neg { .. } => BaseOp::Neg,
        Inst::Not { .. } => BaseOp::Not,
        Inst::Sext { width, .. } => BaseOp::Sext(*width),
        Inst::Load { width, .. } => BaseOp::Load(*width),
        Inst::Store { width, .. } => BaseOp::Store(*width),
        Inst::Spill { .. } => BaseOp::Spill,
        Inst::Reload { .. } => BaseOp::Reload,
        Inst::Enter { .. } => BaseOp::Enter,
        Inst::Exit { .. } => BaseOp::Exit,
        Inst::Branch { cond, .. } => BaseOp::Branch(*cond),
        Inst::BranchImm { cond, .. } => BaseOp::BranchImm(*cond),
        Inst::Jump { .. } => BaseOp::Jump,
        Inst::Call { .. } => BaseOp::Call,
        Inst::CallR { .. } => BaseOp::CallR,
        Inst::Rjr { .. } => BaseOp::Rjr,
        Inst::Epi => BaseOp::Epi,
        Inst::Bcopy { .. } => BaseOp::Bcopy,
        Inst::Bzero { .. } => BaseOp::Bzero,
        Inst::Nop => BaseOp::Nop,
        Inst::Label(_) => panic!("labels have no encoding"),
    }
}

/// The operand fields of an instruction, in canonical order.
///
/// `enter`/`exit` expose their two (always-`sp`) register fields because
/// the encoding transmits them — this is what makes `[enter sp,*,*]` a
/// meaningful operand specialization in the paper's worked example.
///
/// # Panics
///
/// Panics on [`Inst::Label`].
pub fn fields(inst: &Inst) -> Vec<Field> {
    match inst {
        Inst::Li { rd, imm } => vec![Field::Reg(*rd), Field::Imm(*imm)],
        Inst::Mov { rd, rs } => vec![Field::Reg(*rd), Field::Reg(*rs)],
        Inst::Alu { rd, rs, rt, .. } => {
            vec![Field::Reg(*rd), Field::Reg(*rs), Field::Reg(*rt)]
        }
        Inst::AluImm { rd, rs, imm, .. } => {
            vec![Field::Reg(*rd), Field::Reg(*rs), Field::Imm(*imm)]
        }
        Inst::Neg { rd, rs } | Inst::Not { rd, rs } | Inst::Sext { rd, rs, .. } => {
            vec![Field::Reg(*rd), Field::Reg(*rs)]
        }
        Inst::Load { rd, off, base, .. } => {
            vec![Field::Reg(*rd), Field::Imm(*off), Field::Reg(*base)]
        }
        Inst::Store { rs, off, base, .. } => {
            vec![Field::Reg(*rs), Field::Imm(*off), Field::Reg(*base)]
        }
        Inst::Spill { rs, off } => vec![Field::Reg(*rs), Field::Imm(*off)],
        Inst::Reload { rd, off } => vec![Field::Reg(*rd), Field::Imm(*off)],
        Inst::Enter { amount } => {
            vec![
                Field::Reg(Reg::SP),
                Field::Reg(Reg::SP),
                Field::Imm(*amount),
            ]
        }
        Inst::Exit { amount } => {
            vec![
                Field::Reg(Reg::SP),
                Field::Reg(Reg::SP),
                Field::Imm(*amount),
            ]
        }
        Inst::Branch { rs, rt, target, .. } => {
            vec![Field::Reg(*rs), Field::Reg(*rt), Field::Target(*target)]
        }
        Inst::BranchImm {
            rs, imm, target, ..
        } => {
            vec![Field::Reg(*rs), Field::Imm(*imm), Field::Target(*target)]
        }
        Inst::Jump { target } => vec![Field::Target(*target)],
        Inst::Call {
            target: FuncRef::Symbol(name),
        } => vec![Field::Func(name.clone())],
        Inst::CallR { rs } | Inst::Rjr { rs } => vec![Field::Reg(*rs)],
        Inst::Epi | Inst::Nop => vec![],
        Inst::Bcopy { rd, rs, rn } => {
            vec![Field::Reg(*rd), Field::Reg(*rs), Field::Reg(*rn)]
        }
        Inst::Bzero { rd, rn } => vec![Field::Reg(*rd), Field::Reg(*rn)],
        Inst::Label(_) => panic!("labels have no fields"),
    }
}

/// Rebuilds an instruction from a base pattern and field values; the
/// inverse of [`base_op`] + [`fields`].
///
/// # Errors
///
/// [`VmError::Encode`] when the fields do not match the pattern's shape.
pub fn rebuild(op: BaseOp, fs: &[Field]) -> Result<Inst, VmError> {
    let bad = || VmError::Encode(format!("field shape mismatch for {op:?}: {fs:?}"));
    let reg = |i: usize| match fs.get(i) {
        Some(Field::Reg(r)) => Ok(*r),
        _ => Err(bad()),
    };
    let imm = |i: usize| match fs.get(i) {
        Some(Field::Imm(v)) => Ok(*v),
        _ => Err(bad()),
    };
    let target = |i: usize| match fs.get(i) {
        Some(Field::Target(t)) => Ok(*t),
        _ => Err(bad()),
    };
    Ok(match op {
        BaseOp::Li => Inst::Li {
            rd: reg(0)?,
            imm: imm(1)?,
        },
        BaseOp::Mov => Inst::Mov {
            rd: reg(0)?,
            rs: reg(1)?,
        },
        BaseOp::Alu(o) => Inst::Alu {
            op: o,
            rd: reg(0)?,
            rs: reg(1)?,
            rt: reg(2)?,
        },
        BaseOp::AluImm(o) => Inst::AluImm {
            op: o,
            rd: reg(0)?,
            rs: reg(1)?,
            imm: imm(2)?,
        },
        BaseOp::Neg => Inst::Neg {
            rd: reg(0)?,
            rs: reg(1)?,
        },
        BaseOp::Not => Inst::Not {
            rd: reg(0)?,
            rs: reg(1)?,
        },
        BaseOp::Sext(w) => Inst::Sext {
            width: w,
            rd: reg(0)?,
            rs: reg(1)?,
        },
        BaseOp::Load(w) => Inst::Load {
            width: w,
            rd: reg(0)?,
            off: imm(1)?,
            base: reg(2)?,
        },
        BaseOp::Store(w) => Inst::Store {
            width: w,
            rs: reg(0)?,
            off: imm(1)?,
            base: reg(2)?,
        },
        BaseOp::Spill => Inst::Spill {
            rs: reg(0)?,
            off: imm(1)?,
        },
        BaseOp::Reload => Inst::Reload {
            rd: reg(0)?,
            off: imm(1)?,
        },
        BaseOp::Enter => {
            let _ = (reg(0)?, reg(1)?);
            Inst::Enter { amount: imm(2)? }
        }
        BaseOp::Exit => {
            let _ = (reg(0)?, reg(1)?);
            Inst::Exit { amount: imm(2)? }
        }
        BaseOp::Branch(c) => Inst::Branch {
            cond: c,
            rs: reg(0)?,
            rt: reg(1)?,
            target: target(2)?,
        },
        BaseOp::BranchImm(c) => Inst::BranchImm {
            cond: c,
            rs: reg(0)?,
            imm: imm(1)?,
            target: target(2)?,
        },
        BaseOp::Jump => Inst::Jump { target: target(0)? },
        BaseOp::Call => match fs.first() {
            Some(Field::Func(name)) => Inst::Call {
                target: FuncRef::Symbol(name.clone()),
            },
            _ => return Err(bad()),
        },
        BaseOp::CallR => Inst::CallR { rs: reg(0)? },
        BaseOp::Rjr => Inst::Rjr { rs: reg(0)? },
        BaseOp::Epi => Inst::Epi,
        BaseOp::Bcopy => Inst::Bcopy {
            rd: reg(0)?,
            rs: reg(1)?,
            rn: reg(2)?,
        },
        BaseOp::Bzero => Inst::Bzero {
            rd: reg(0)?,
            rn: reg(1)?,
        },
        BaseOp::Nop => Inst::Nop,
    })
}

// ---- base byte encoding ------------------------------------------------

#[allow(clippy::type_complexity)]
fn opcode_table() -> &'static (Vec<(BaseOp, ImmWidth)>, HashMap<(BaseOp, ImmWidth), u8>) {
    static TABLE: OnceLock<(Vec<(BaseOp, ImmWidth)>, HashMap<(BaseOp, ImmWidth), u8>)> =
        OnceLock::new();
    TABLE.get_or_init(|| {
        let mut list = Vec::new();
        for op in BaseOp::all() {
            if has_imm(op) {
                for w in [ImmWidth::W8, ImmWidth::W16, ImmWidth::W32] {
                    list.push((op, w));
                }
            } else {
                list.push((op, ImmWidth::None));
            }
        }
        assert!(list.len() <= 256, "opcode table must fit one byte");
        let index = list
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u8))
            .collect();
        (list, index)
    })
}

/// Number of opcode bytes in the base encoding.
pub fn opcode_count() -> usize {
    opcode_table().0.len()
}

/// Encoded size in bytes of one instruction (labels are free).
pub fn inst_size(inst: &Inst) -> usize {
    if inst.is_label() {
        return 0;
    }
    let fs = fields(inst);
    let mut reg_nibbles = 0usize;
    let mut tail_bytes = 0usize;
    for f in &fs {
        match f {
            Field::Reg(_) => reg_nibbles += 1,
            Field::Imm(v) => tail_bytes += (imm_width(*v).bits() / 8) as usize,
            Field::Target(_) | Field::Func(_) => tail_bytes += 2,
        }
    }
    1 + reg_nibbles.div_ceil(2) + tail_bytes
}

/// Encodes one instruction, interning call symbols via `intern`.
///
/// # Errors
///
/// [`VmError::Encode`] on labels.
pub fn encode_inst(
    inst: &Inst,
    intern: &mut impl FnMut(&str) -> u16,
    out: &mut Vec<u8>,
) -> Result<(), VmError> {
    if inst.is_label() {
        return Err(VmError::Encode("labels have no encoding".into()));
    }
    let op = base_op(inst);
    let fs = fields(inst);
    let imm_value = fs.iter().find_map(|f| match f {
        Field::Imm(v) => Some(*v),
        _ => None,
    });
    let width = imm_value.map_or(ImmWidth::None, imm_width);
    let byte = *opcode_table()
        .1
        .get(&(op, width))
        .ok_or_else(|| VmError::Encode(format!("no opcode for {op:?}/{width:?}")))?;
    out.push(byte);
    // Register nibbles, in field order.
    let regs: Vec<u8> = fs
        .iter()
        .filter_map(|f| match f {
            Field::Reg(r) => Some(r.number()),
            _ => None,
        })
        .collect();
    for pair in regs.chunks(2) {
        out.push((pair[0] << 4) | pair.get(1).copied().unwrap_or(0));
    }
    // Immediate, then target/function tails.
    for f in &fs {
        match f {
            Field::Reg(_) => {}
            Field::Imm(v) => match width {
                ImmWidth::W8 => out.push(*v as u8),
                ImmWidth::W16 => out.extend_from_slice(&(*v as u16).to_le_bytes()),
                _ => out.extend_from_slice(&(*v as u32).to_le_bytes()),
            },
            Field::Target(t) => out.extend_from_slice(&(*t as u16).to_le_bytes()),
            Field::Func(name) => out.extend_from_slice(&intern(name).to_le_bytes()),
        }
    }
    Ok(())
}

/// Decodes one instruction; the inverse of [`encode_inst`].
///
/// # Errors
///
/// [`VmError::Encode`] on truncation or unknown opcodes.
pub fn decode_inst(bytes: &[u8], pos: &mut usize, symbols: &[String]) -> Result<Inst, VmError> {
    let eof = || VmError::Encode("unexpected end of code".into());
    let byte = *bytes.get(*pos).ok_or_else(eof)?;
    *pos += 1;
    let &(op, width) = opcode_table()
        .0
        .get(byte as usize)
        .ok_or_else(|| VmError::Encode(format!("unknown opcode byte {byte}")))?;
    // Reconstruct the field shape from a canonical instance.
    let shape = fields(&canonical_instance(op));
    let reg_count = shape.iter().filter(|f| matches!(f, Field::Reg(_))).count();
    let mut regs = Vec::with_capacity(reg_count);
    for i in 0..reg_count.div_ceil(2) {
        let b = *bytes.get(*pos).ok_or_else(eof)?;
        *pos += 1;
        regs.push(b >> 4);
        if i * 2 + 1 < reg_count {
            regs.push(b & 0x0F);
        }
    }
    let mut reg_iter = regs.into_iter();
    let mut out_fields = Vec::with_capacity(shape.len());
    for f in &shape {
        match f {
            Field::Reg(_) => out_fields.push(Field::Reg(Reg::new(
                reg_iter.next().expect("counted register fields"),
            ))),
            Field::Imm(_) => {
                let v = match width {
                    ImmWidth::W8 => {
                        let b = *bytes.get(*pos).ok_or_else(eof)?;
                        *pos += 1;
                        i32::from(b as i8)
                    }
                    ImmWidth::W16 => {
                        let b = bytes.get(*pos..*pos + 2).ok_or_else(eof)?;
                        *pos += 2;
                        i32::from(i16::from_le_bytes([b[0], b[1]]))
                    }
                    _ => {
                        let b = bytes.get(*pos..*pos + 4).ok_or_else(eof)?;
                        *pos += 4;
                        i32::from_le_bytes([b[0], b[1], b[2], b[3]])
                    }
                };
                out_fields.push(Field::Imm(v));
            }
            Field::Target(_) => {
                let b = bytes.get(*pos..*pos + 2).ok_or_else(eof)?;
                *pos += 2;
                out_fields.push(Field::Target(u32::from(u16::from_le_bytes([b[0], b[1]]))));
            }
            Field::Func(_) => {
                let b = bytes.get(*pos..*pos + 2).ok_or_else(eof)?;
                *pos += 2;
                let idx = u16::from_le_bytes([b[0], b[1]]);
                let name = symbols
                    .get(usize::from(idx))
                    .ok_or_else(|| VmError::Encode(format!("bad symbol index {idx}")))?;
                out_fields.push(Field::Func(name.clone()));
            }
        }
    }
    rebuild(op, &out_fields)
}

/// A canonical instance of each base pattern (all fields zeroed), used
/// to recover field shapes.
pub fn canonical_instance(op: BaseOp) -> Inst {
    let r = Reg::new(0);
    match op {
        BaseOp::Li => Inst::Li { rd: r, imm: 0 },
        BaseOp::Mov => Inst::Mov { rd: r, rs: r },
        BaseOp::Alu(o) => Inst::Alu {
            op: o,
            rd: r,
            rs: r,
            rt: r,
        },
        BaseOp::AluImm(o) => Inst::AluImm {
            op: o,
            rd: r,
            rs: r,
            imm: 0,
        },
        BaseOp::Neg => Inst::Neg { rd: r, rs: r },
        BaseOp::Not => Inst::Not { rd: r, rs: r },
        BaseOp::Sext(w) => Inst::Sext {
            width: w,
            rd: r,
            rs: r,
        },
        BaseOp::Load(w) => Inst::Load {
            width: w,
            rd: r,
            off: 0,
            base: r,
        },
        BaseOp::Store(w) => Inst::Store {
            width: w,
            rs: r,
            off: 0,
            base: r,
        },
        BaseOp::Spill => Inst::Spill { rs: r, off: 0 },
        BaseOp::Reload => Inst::Reload { rd: r, off: 0 },
        BaseOp::Enter => Inst::Enter { amount: 0 },
        BaseOp::Exit => Inst::Exit { amount: 0 },
        BaseOp::Branch(c) => Inst::Branch {
            cond: c,
            rs: r,
            rt: r,
            target: 0,
        },
        BaseOp::BranchImm(c) => Inst::BranchImm {
            cond: c,
            rs: r,
            imm: 0,
            target: 0,
        },
        BaseOp::Jump => Inst::Jump { target: 0 },
        BaseOp::Call => Inst::Call {
            target: FuncRef::Symbol(String::new()),
        },
        BaseOp::CallR => Inst::CallR { rs: r },
        BaseOp::Rjr => Inst::Rjr { rs: r },
        BaseOp::Epi => Inst::Epi,
        BaseOp::Bcopy => Inst::Bcopy {
            rd: r,
            rs: r,
            rn: r,
        },
        BaseOp::Bzero => Inst::Bzero { rd: r, rn: r },
        BaseOp::Nop => Inst::Nop,
    }
}

/// Code-segment size (instruction bytes only) of a whole program, with
/// labels materialized as 2-byte branch targets already counted in the
/// branch instructions themselves.
pub fn code_segment_size(program: &VmProgram) -> usize {
    program
        .functions
        .iter()
        .flat_map(|f| f.code.iter())
        .map(inst_size)
        .sum()
}

/// Encodes a whole program (container: symbols, globals, functions).
///
/// # Errors
///
/// Propagates instruction-encoding errors.
pub fn encode_program(program: &VmProgram) -> Result<Vec<u8>, VmError> {
    let mut symbols: Vec<String> = Vec::new();
    let mut sym_index: HashMap<String, u16> = HashMap::new();
    let mut code = Vec::new();
    let mut func_meta = Vec::new();
    for f in &program.functions {
        let start = code.len();
        let mut insts = 0u32;
        let mut labels: Vec<(u32, u32)> = Vec::new();
        for inst in &f.code {
            if let Inst::Label(l) = inst {
                labels.push((*l, insts));
                continue;
            }
            let mut intern = |name: &str| -> u16 {
                if let Some(&i) = sym_index.get(name) {
                    return i;
                }
                let i = symbols.len() as u16;
                symbols.push(name.to_string());
                sym_index.insert(name.to_string(), i);
                i
            };
            encode_inst(inst, &mut intern, &mut code)?;
            insts += 1;
        }
        func_meta.push((f, start, code.len(), insts, labels));
    }
    let mut out = Vec::new();
    out.extend_from_slice(b"CCVM");
    out.push(u8::from(program.isa.immediates));
    out.push(u8::from(program.isa.reg_displacement));
    push_u16(&mut out, symbols.len() as u16);
    for s in &symbols {
        push_u16(&mut out, s.len() as u16);
        out.extend_from_slice(s.as_bytes());
    }
    push_u16(&mut out, program.globals.len() as u16);
    for g in &program.globals {
        push_u16(&mut out, g.name.len() as u16);
        out.extend_from_slice(g.name.as_bytes());
        push_u32(&mut out, g.size);
        push_u32(&mut out, g.init.len() as u32);
        out.extend_from_slice(&g.init);
    }
    push_u16(&mut out, program.functions.len() as u16);
    for (f, start, end, insts, labels) in func_meta {
        push_u16(&mut out, f.name.len() as u16);
        out.extend_from_slice(f.name.as_bytes());
        push_u16(&mut out, f.param_count as u16);
        push_u32(&mut out, f.frame_size);
        push_u16(&mut out, f.saved_regs.len() as u16);
        for r in &f.saved_regs {
            out.push(r.number());
        }
        push_u16(&mut out, labels.len() as u16);
        for (l, at) in labels {
            push_u16(&mut out, l as u16);
            push_u32(&mut out, at);
        }
        push_u32(&mut out, insts);
        push_u32(&mut out, (end - start) as u32);
        out.extend_from_slice(&code[start..end]);
    }
    Ok(out)
}

/// Decodes a program produced by [`encode_program`].
///
/// # Errors
///
/// [`VmError::Encode`] on malformed input.
pub fn decode_program(bytes: &[u8]) -> Result<VmProgram, VmError> {
    let mut r = ByteReader { bytes, pos: 0 };
    if r.take(4)? != b"CCVM" {
        return Err(VmError::Encode("bad magic".into()));
    }
    let immediates = r.u8()? != 0;
    let reg_displacement = r.u8()? != 0;
    let nsyms = r.u16()?;
    let mut symbols = Vec::with_capacity(usize::from(nsyms));
    for _ in 0..nsyms {
        let len = r.u16()? as usize;
        symbols.push(
            String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| VmError::Encode("bad symbol utf-8".into()))?,
        );
    }
    let mut program = VmProgram::new();
    program.isa = crate::isa::IsaConfig {
        immediates,
        reg_displacement,
    };
    let nglobals = r.u16()?;
    for _ in 0..nglobals {
        let len = r.u16()? as usize;
        let name = String::from_utf8(r.take(len)?.to_vec())
            .map_err(|_| VmError::Encode("bad global name".into()))?;
        let size = r.u32()?;
        let init_len = r.u32()? as usize;
        let init = r.take(init_len)?.to_vec();
        program.globals.push(VmGlobal { name, size, init });
    }
    let nfuncs = r.u16()?;
    for _ in 0..nfuncs {
        let len = r.u16()? as usize;
        let name = String::from_utf8(r.take(len)?.to_vec())
            .map_err(|_| VmError::Encode("bad function name".into()))?;
        let params = r.u16()? as usize;
        let frame = r.u32()?;
        let nsaved = r.u16()?;
        let mut saved = Vec::with_capacity(usize::from(nsaved));
        for _ in 0..nsaved {
            saved.push(Reg::new(r.u8()?));
        }
        let nlabels = r.u16()?;
        let mut labels = Vec::with_capacity(usize::from(nlabels));
        for _ in 0..nlabels {
            let l = r.u16()?;
            let at = r.u32()?;
            labels.push((u32::from(l), at));
        }
        let insts = r.u32()?;
        let code_len = r.u32()? as usize;
        let code_bytes = r.take(code_len)?;
        let mut f = VmFunction::new(name, params, frame);
        f.saved_regs = saved;
        let mut pos = 0usize;
        let mut label_iter = labels.iter().peekable();
        for i in 0..insts {
            while label_iter.peek().is_some_and(|&&(_, at)| at == i) {
                let &(l, _) = label_iter.next().expect("peeked");
                f.code.push(Inst::Label(l));
            }
            f.code.push(decode_inst(code_bytes, &mut pos, &symbols)?);
        }
        // Labels at the very end of the function.
        for &(l, _) in label_iter {
            f.code.push(Inst::Label(l));
        }
        program.functions.push(f);
    }
    Ok(program)
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn u8(&mut self) -> Result<u8, VmError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| VmError::Encode("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, VmError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, VmError> {
        Ok(u32::from_le_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VmError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| VmError::Encode("unexpected end of input".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_inst;

    #[test]
    fn opcode_table_fits_a_byte() {
        assert!(opcode_count() <= 256, "got {}", opcode_count());
    }

    #[test]
    fn paper_sizes() {
        // enter sp,sp,24: opcode + (sp,sp) nibbles + imm8 = 3 bytes.
        assert_eq!(inst_size(&parse_inst("enter sp,sp,24", 1).unwrap()), 3);
        // ld.iw n0,4(sp): opcode + (n0,sp) + off8 = 3 bytes.
        assert_eq!(inst_size(&parse_inst("ld.iw n0,4(sp)", 1).unwrap()), 3);
        // mov.i n4,n0: opcode + 1 reg byte = 2.
        assert_eq!(inst_size(&parse_inst("mov.i n4,n0", 1).unwrap()), 2);
        // rjr ra: opcode + 1 nibble-padded byte = 2.
        assert_eq!(inst_size(&parse_inst("rjr ra", 1).unwrap()), 2);
        // Labels are free.
        assert_eq!(inst_size(&Inst::Label(3)), 0);
        // Wide immediates cost more.
        assert_eq!(inst_size(&parse_inst("li n0,5", 1).unwrap()), 3);
        assert_eq!(inst_size(&parse_inst("li n0,300", 1).unwrap()), 4);
        assert_eq!(inst_size(&parse_inst("li n0,100000", 1).unwrap()), 6);
    }

    #[test]
    fn field_view_roundtrips() {
        let samples = [
            "li n3,-77",
            "mov.i n4,n0",
            "add.i n0,n4,-1",
            "mul.i n1,n2,n3",
            "ld.iw n0,4(sp)",
            "st.ib n3,1000(n5)",
            "spill.i ra,20(sp)",
            "reload.i n4,16(sp)",
            "enter sp,sp,24",
            "exit sp,sp,24",
            "ble.i n4,0,$L56",
            "bgeu.i n1,n2,$L3",
            "j $L7",
            "call pepper",
            "callr n3",
            "rjr ra",
            "epi",
            "bcopy n0,n1,n2",
            "bzero n0,n1",
            "nop",
            "neg.i n1,n2",
            "not.i n1,n1",
            "sext.ib n2,n2",
        ];
        for s in samples {
            let inst = parse_inst(s, 1).unwrap();
            let op = base_op(&inst);
            let fs = fields(&inst);
            let back = rebuild(op, &fs).unwrap();
            assert_eq!(back, inst, "field roundtrip failed for {s}");
        }
    }

    #[test]
    fn inst_encode_decode_roundtrip() {
        let samples = [
            "li n3,-77",
            "li n0,123456",
            "add.i n0,n4,-1",
            "sub.i n1,n2,n3",
            "ld.iw n0,4(sp)",
            "st.is n3,-300(n5)",
            "spill.i ra,20(sp)",
            "enter sp,sp,24",
            "ble.i n4,0,$L56",
            "j $L7",
            "call pepper",
            "rjr ra",
            "epi",
            "nop",
        ];
        let symbols = vec!["pepper".to_string()];
        for s in samples {
            let inst = parse_inst(s, 1).unwrap();
            let mut buf = Vec::new();
            let mut intern = |name: &str| {
                assert_eq!(name, "pepper");
                0u16
            };
            encode_inst(&inst, &mut intern, &mut buf).unwrap();
            assert_eq!(buf.len(), inst_size(&inst), "size mismatch for {s}");
            let mut pos = 0;
            let back = decode_inst(&buf, &mut pos, &symbols).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(back, inst, "encode/decode failed for {s}");
        }
    }

    #[test]
    fn program_roundtrip() {
        let text = "\
.global buf 8 1 2
.func salt params=2 frame=24 saves=n4
    enter sp,sp,24
    spill.i n4,16(sp)
    spill.i ra,20(sp)
    mov.i n4,n0
    ble.i n4,0,$L56
    mov.i n1,n4
    call pepper
$L56:
    add.i n0,n4,-1
    reload.i n4,16(sp)
    reload.i ra,20(sp)
    exit sp,sp,24
    rjr ra
.end
.func pepper params=2 frame=0
    add.i n0,n0,n1
    rjr ra
.end
";
        let p = crate::asm::parse_program(text).unwrap();
        let bytes = encode_program(&p).unwrap();
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn label_positions_survive_roundtrip() {
        let text = "\
.func f params=0 frame=0
$L1:
    nop
$L2:
    j $L1
$L3:
.end
";
        let p = crate::asm::parse_program(text).unwrap();
        let back = decode_program(&encode_program(&p).unwrap()).unwrap();
        assert_eq!(back.functions[0].code, p.functions[0].code);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_program(b"").is_err());
        assert!(decode_program(b"XXXXXX").is_err());
        let p = crate::asm::parse_program(".func f params=0 frame=0\n    nop\n.end\n").unwrap();
        let bytes = encode_program(&p).unwrap();
        assert!(decode_program(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn field_bits() {
        assert_eq!(Field::Reg(Reg::SP).bits(), 4);
        assert_eq!(Field::Imm(5).bits(), 8);
        assert_eq!(Field::Imm(300).bits(), 16);
        assert_eq!(Field::Imm(1 << 20).bits(), 32);
        assert_eq!(Field::Target(9).bits(), 16);
        assert_eq!(Field::Func("f".into()).bits(), 16);
    }
}
