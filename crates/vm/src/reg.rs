//! The sixteen integer registers.

use std::fmt;

/// One of the sixteen integer registers.
///
/// `n0`–`n13` are general; `sp` (the stack pointer) and `ra` (the return
/// address) are registers 14 and 15, so every register field fits in a
/// 4-bit nibble — the property BRISC's operand packing relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer.
    pub const SP: Reg = Reg(14);
    /// The return-address register.
    pub const RA: Reg = Reg(15);
    /// Number of registers.
    pub const COUNT: u8 = 16;
    /// Argument/result registers (caller-saved), in order.
    pub const ARGS: [Reg; 4] = [Reg(0), Reg(1), Reg(2), Reg(3)];
    /// Scratch registers available to expression evaluation.
    pub const SCRATCH: [Reg; 6] = [Reg(0), Reg(1), Reg(2), Reg(3), Reg(12), Reg(13)];
    /// Callee-saved registers available for variable promotion.
    pub const CALLEE_SAVED: [Reg; 8] = [
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
        Reg(10),
        Reg(11),
    ];

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16`.
    pub fn new(n: u8) -> Reg {
        assert!(n < Self::COUNT, "register number out of range");
        Reg(n)
    }

    /// The register number (0–15).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Parses `n0`…`n13`, `sp`, or `ra`.
    pub fn from_name(name: &str) -> Option<Reg> {
        match name {
            "sp" => Some(Reg::SP),
            "ra" => Some(Reg::RA),
            _ => {
                let n: u8 = name.strip_prefix('n')?.parse().ok()?;
                (n < 14).then_some(Reg(n))
            }
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => write!(f, "sp"),
            Reg::RA => write!(f, "ra"),
            Reg(n) => write!(f, "n{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for n in 0..Reg::COUNT {
            let r = Reg::new(n);
            assert_eq!(Reg::from_name(&r.to_string()), Some(r));
        }
        assert_eq!(Reg::from_name("sp"), Some(Reg::SP));
        assert_eq!(Reg::from_name("ra"), Some(Reg::RA));
        assert_eq!(Reg::from_name("n14"), None, "sp must not alias n14");
        assert_eq!(Reg::from_name("n16"), None);
        assert_eq!(Reg::from_name("x3"), None);
    }

    #[test]
    fn special_registers_are_distinct_from_scratch() {
        assert!(!Reg::SCRATCH.contains(&Reg::SP));
        assert!(!Reg::SCRATCH.contains(&Reg::RA));
        assert!(!Reg::CALLEE_SAVED.contains(&Reg::SP));
        for r in Reg::CALLEE_SAVED {
            assert!(
                !Reg::SCRATCH.contains(&r),
                "{r} is both scratch and callee-saved"
            );
        }
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn out_of_range_panics() {
        Reg::new(16);
    }
}
