//! Randomized (deterministic, seeded) tests: BRISC images survive
//! serialization, corrupt images never panic, and random generated
//! programs execute identically in compressed form.

use codecomp_brisc::compress::{compress, BriscOptions};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::translate::translate;
use codecomp_brisc::BriscImage;
use codecomp_core::fault::XorShift64;
use codecomp_corpus::{synthetic, SynthConfig};
use codecomp_front::compile;
use codecomp_vm::codegen::compile_module;
use codecomp_vm::interp::Machine;
use codecomp_vm::isa::IsaConfig;

const CASES: u64 = 16;
const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 26;

fn compressed_image(seed: u64) -> BriscImage {
    let src = synthetic(
        seed,
        SynthConfig {
            functions: 6,
            statements_per_function: 5,
            globals: 3,
        },
    );
    let ir = compile(&src).expect("generated programs compile");
    let vm = compile_module(&ir, IsaConfig::full()).expect("codegen succeeds");
    compress(&vm, BriscOptions::default())
        .expect("compression succeeds")
        .image
}

#[test]
fn image_serialization_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x3A00 + case);
        let image = compressed_image(rng.below(500));
        let bytes = image.to_bytes();
        assert_eq!(BriscImage::from_bytes(&bytes).unwrap(), image);
    }
}

#[test]
fn corrupt_images_never_panic() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x3B00 + case);
        let image = compressed_image(rng.below(100));
        let mut bytes = image.to_bytes();
        for _ in 0..rng.range_usize(1, 8) {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= rng.next_u64() as u8;
        }
        // Deserialization may fail; if it succeeds, decode/translate and
        // even execution must fail cleanly rather than panic.
        if let Ok(broken) = BriscImage::from_bytes(&bytes) {
            let _ = translate(&broken);
            if let Ok(mut m) = BriscMachine::new(&broken, MEM, 10_000) {
                let _ = m.run("main", &[]);
            }
        }
    }
}

#[test]
fn compressed_execution_matches_vm() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x3C00 + case);
        let seed = rng.below(500);
        // Random K stresses the pass loop's stopping rule.
        let k = rng.range_usize(1, 25);
        let src = synthetic(
            seed,
            SynthConfig {
                functions: 5,
                statements_per_function: 4,
                globals: 2,
            },
        );
        let ir = compile(&src).expect("generated programs compile");
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let expect = Machine::new(&vm, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        let report = compress(
            &vm,
            BriscOptions {
                k,
                ..Default::default()
            },
        )
        .unwrap();
        let got = BriscMachine::new(&report.image, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(got.value, expect.value);
        assert_eq!(got.output, expect.output);
    }
}
