//! Property tests: BRISC images survive serialization, corrupt images
//! never panic, and random generated programs execute identically in
//! compressed form.

use codecomp_brisc::compress::{compress, BriscOptions};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::translate::translate;
use codecomp_brisc::BriscImage;
use codecomp_corpus::{synthetic, SynthConfig};
use codecomp_front::compile;
use codecomp_vm::codegen::compile_module;
use codecomp_vm::interp::Machine;
use codecomp_vm::isa::IsaConfig;
use proptest::prelude::*;

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 26;

fn compressed_image(seed: u64) -> BriscImage {
    let src = synthetic(
        seed,
        SynthConfig {
            functions: 6,
            statements_per_function: 5,
            globals: 3,
        },
    );
    let ir = compile(&src).expect("generated programs compile");
    let vm = compile_module(&ir, IsaConfig::full()).expect("codegen succeeds");
    compress(&vm, BriscOptions::default())
        .expect("compression succeeds")
        .image
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn image_serialization_roundtrip(seed in 0u64..500) {
        let image = compressed_image(seed);
        let bytes = image.to_bytes();
        prop_assert_eq!(BriscImage::from_bytes(&bytes).unwrap(), image);
    }

    #[test]
    fn corrupt_images_never_panic(seed in 0u64..100, flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        let image = compressed_image(seed);
        let mut bytes = image.to_bytes();
        for (idx, mask) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        // Deserialization may fail; if it succeeds, decode/translate and
        // even execution must fail cleanly rather than panic.
        if let Ok(broken) = BriscImage::from_bytes(&bytes) {
            let _ = translate(&broken);
            if let Ok(mut m) = BriscMachine::new(&broken, MEM, 10_000) {
                let _ = m.run("main", &[]);
            }
        }
    }

    #[test]
    fn compressed_execution_matches_vm(seed in 0u64..500, k in 1usize..25) {
        let src = synthetic(
            seed,
            SynthConfig { functions: 5, statements_per_function: 4, globals: 2 },
        );
        let ir = compile(&src).expect("generated programs compile");
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let expect = Machine::new(&vm, MEM, FUEL).unwrap().run("main", &[]).unwrap();
        // Random K stresses the pass loop's stopping rule.
        let report = compress(&vm, BriscOptions { k, ..Default::default() }).unwrap();
        let got =
            BriscMachine::new(&report.image, MEM, FUEL).unwrap().run("main", &[]).unwrap();
        prop_assert_eq!(got.value, expect.value);
        prop_assert_eq!(got.output, expect.output);
    }
}
