//! The serialized BRISC program image.
//!
//! "Once the compressor has created a dictionary, it outputs the
//! dictionary followed by the modified input program" (§4). The image
//! holds the dictionary, the order-1 Markov opcode tables, globals, a
//! function table (with the frame metadata `epi` needs and the
//! extra-leader offsets that keep fall-through labels decodable), and
//! the byte-aligned compressed code. Branch targets are local byte
//! offsets, so the code is randomly addressable at basic-block
//! granularity — the property that makes in-place interpretation work.

use crate::entry::{DictEntry, FieldKind, ImmEnc, InstPattern, PatternField};
use crate::markov::{MarkovTables, BLOCK_START};
use crate::BriscError;
use codecomp_coding::bits::{BitReader, BitWriter};
use codecomp_core::cov_hit;
use codecomp_vm::encode::{BaseOp, Field};
use codecomp_vm::isa::Inst;
use codecomp_vm::program::VmGlobal;
use codecomp_vm::reg::Reg;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Function-reference indices at or above this denote host functions.
pub const HOST_FUNC_BASE: u16 = 0xFF00;

/// One rewritten program element: a dictionary entry plus its wildcard
/// field values.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Dictionary entry index.
    pub entry: u32,
    /// Wildcard values in pattern order (concatenated across components).
    pub values: Vec<Field>,
}

/// A function's items ready for assembly.
#[derive(Debug, Clone)]
pub struct FuncItems {
    /// Function name.
    pub name: String,
    /// Parameter count.
    pub param_count: usize,
    /// Frame size.
    pub frame_size: u32,
    /// Callee-saved registers in spill order.
    pub saved_regs: Vec<Reg>,
    /// Items in program order. `Field::Target` values hold *item indices*
    /// within this function; assembly patches them to byte offsets.
    pub items: Vec<Item>,
    /// Per-item basic-block-leader flags.
    pub leaders: Vec<bool>,
}

/// Function metadata in the image.
#[derive(Debug, Clone, PartialEq)]
pub struct BriscFunction {
    /// Name.
    pub name: String,
    /// Parameter count.
    pub param_count: usize,
    /// Frame size (used by `epi`).
    pub frame_size: u32,
    /// Callee-saved registers (used by `epi`).
    pub saved_regs: Vec<Reg>,
    /// Start offset in the code blob.
    pub start: u32,
    /// Code length in bytes.
    pub len: u32,
    /// Sorted local byte offsets of leaders that are *not* implied by the
    /// previous item ending a block.
    pub extra_leaders: Vec<u32>,
}

/// A complete BRISC program.
#[derive(Debug, Clone, PartialEq)]
pub struct BriscImage {
    /// The instruction-pattern dictionary.
    pub dictionary: Vec<DictEntry>,
    /// Order-1 opcode tables.
    pub markov: MarkovTables,
    /// Ablation mode: a single (block-start) context instead of order-1.
    pub order0: bool,
    /// Global data.
    pub globals: Vec<VmGlobal>,
    /// Functions, in code order.
    pub functions: Vec<BriscFunction>,
    /// The compressed code blob.
    pub code: Vec<u8>,
}

/// One decoded program element.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedItem {
    /// Dictionary entry index.
    pub entry: u32,
    /// The expanded instructions; branch targets are local byte offsets.
    pub insts: Vec<Inst>,
    /// Encoded size in bytes.
    pub size: usize,
}

impl BriscImage {
    /// The context actually used at decode time (collapses to the
    /// block-start context under the order-0 ablation).
    pub fn effective_ctx(&self, ctx: u32) -> u32 {
        if self.order0 {
            BLOCK_START
        } else {
            ctx
        }
    }

    /// The function whose code contains global offset `pos`.
    pub fn function_at(&self, pos: usize) -> Option<usize> {
        let pos = pos as u64;
        self.functions
            .iter()
            .position(|f| pos >= u64::from(f.start) && pos < u64::from(f.start) + u64::from(f.len))
    }

    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Whether `local` is an extra (fall-through-reachable) leader of
    /// function `func`.
    pub fn is_extra_leader(&self, func: usize, local: u32) -> bool {
        self.functions[func]
            .extra_leaders
            .binary_search(&local)
            .is_ok()
    }

    /// Size of the code blob alone.
    pub fn code_size(&self) -> usize {
        self.code.len()
    }

    /// Full serialized image size.
    pub fn total_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Decodes the item at global offset `pos` in Markov context `ctx`.
    ///
    /// # Errors
    ///
    /// [`BriscError::Corrupt`] on invalid opcodes or truncation.
    pub fn decode_at(&self, pos: usize, ctx: u32) -> Result<DecodedItem, BriscError> {
        let mut cursor = pos;
        let ctx = self.effective_ctx(ctx);
        let entry_id = self.markov.decode_opcode(ctx, &self.code, &mut cursor)?;
        let Some(entry) = self.dictionary.get(entry_id as usize) else {
            cov_hit!("brisc.decode.bad_entry_id");
            return Err(BriscError::Corrupt(format!("bad entry id {entry_id}")));
        };
        let operand_bytes = (entry.wildcard_bits() as usize).div_ceil(8);
        let Some(operand_slice) = self.code.get(cursor..cursor + operand_bytes) else {
            cov_hit!("brisc.decode.operand_overrun");
            return Err(BriscError::Corrupt("operands past end of code".into()));
        };
        let mut bits = BitReader::new(operand_slice);
        let mut values = Vec::new();
        for p in &entry.patterns {
            for f in &p.fields {
                if let PatternField::Wildcard(kind) = f {
                    values.push(self.read_field(*kind, &mut bits)?);
                }
            }
        }
        let mut iter = values.into_iter();
        let mut insts = Vec::with_capacity(entry.patterns.len());
        for p in &entry.patterns {
            insts.push(p.instantiate(&mut iter)?);
        }
        Ok(DecodedItem {
            entry: entry_id,
            insts,
            size: cursor - pos + operand_bytes,
        })
    }

    /// Linearly decodes function `idx`'s entire body without executing
    /// it, charging one fuel step per item — the load-time scan behind
    /// quarantine decisions.
    ///
    /// # Errors
    ///
    /// [`BriscError::Corrupt`] if any item fails to decode,
    /// [`BriscError::Limit`] when `budget` trips.
    pub fn validate_function(
        &self,
        idx: usize,
        budget: &codecomp_core::Budget,
    ) -> Result<(), BriscError> {
        let f = self
            .functions
            .get(idx)
            .ok_or_else(|| BriscError::Corrupt(format!("no function index {idx}")))?;
        let mut pos = f.start as usize;
        let end = pos + f.len as usize;
        let mut ctx = BLOCK_START;
        while pos < end {
            budget.charge_fuel(1)?;
            let local = (pos - f.start as usize) as u32;
            let effective = if self.is_extra_leader(idx, local) {
                BLOCK_START
            } else {
                ctx
            };
            let item = self.decode_at(pos, effective)?;
            let last_ends = item.insts.last().is_some_and(Inst::ends_block);
            ctx = if last_ends { BLOCK_START } else { item.entry };
            pos += item.size;
        }
        Ok(())
    }

    fn read_field(&self, kind: FieldKind, bits: &mut BitReader<'_>) -> Result<Field, BriscError> {
        let eof = |_| BriscError::Corrupt("operand bits truncated".into());
        Ok(match kind {
            FieldKind::Reg => Field::Reg(Reg::new(bits.read_bits(4).map_err(eof)? as u8)),
            FieldKind::Imm(ImmEnc::X4) => Field::Imm(bits.read_bits(4).map_err(eof)? as i32 * 4),
            FieldKind::Imm(ImmEnc::I8) => {
                Field::Imm(i32::from(bits.read_bits(8).map_err(eof)? as u8 as i8))
            }
            FieldKind::Imm(ImmEnc::I16) => {
                Field::Imm(i32::from(bits.read_bits(16).map_err(eof)? as u16 as i16))
            }
            FieldKind::Imm(ImmEnc::I32) => Field::Imm(bits.read_bits(32).map_err(eof)? as i32),
            FieldKind::Target => Field::Target(bits.read_bits(16).map_err(eof)? as u32),
            FieldKind::Func => {
                let idx = bits.read_bits(16).map_err(eof)? as u16;
                let name = if idx >= HOST_FUNC_BASE {
                    codecomp_ir::eval::HOST_FUNCTIONS
                        .get(usize::from(idx - HOST_FUNC_BASE))
                        .map(|s| s.to_string())
                        .ok_or_else(|| BriscError::Corrupt("bad host index".into()))?
                } else {
                    self.functions
                        .get(usize::from(idx))
                        .map(|f| f.name.clone())
                        .ok_or_else(|| BriscError::Corrupt("bad function index".into()))?
                };
                Field::Func(name)
            }
        })
    }
}

// ---- assembly -----------------------------------------------------------------

/// Assembles per-function items into a complete image: builds the Markov
/// model, lays out byte offsets, patches branch targets, and encodes.
///
/// # Errors
///
/// [`BriscError::Compress`] on layout problems (targets not at item
/// starts, offsets exceeding 16 bits, …).
pub fn assemble(
    dictionary: Vec<DictEntry>,
    funcs: Vec<FuncItems>,
    globals: Vec<VmGlobal>,
) -> Result<BriscImage, BriscError> {
    assemble_with(dictionary, funcs, globals, false)
}

/// [`assemble`] with the order-0 Markov ablation knob.
///
/// # Errors
///
/// As [`assemble`].
pub fn assemble_with(
    dictionary: Vec<DictEntry>,
    funcs: Vec<FuncItems>,
    globals: Vec<VmGlobal>,
    order0: bool,
) -> Result<BriscImage, BriscError> {
    // Function name resolution table for Func fields.
    let func_index: HashMap<&str, u16> = funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i as u16))
        .collect();

    // Contexts per item: BLOCK_START at leaders, else previous entry.
    let item_ctx = |f: &FuncItems, i: usize| -> u32 {
        if order0 || f.leaders[i] {
            BLOCK_START
        } else {
            f.items[i - 1].entry
        }
    };
    let mut transitions = Vec::new();
    for f in &funcs {
        for (i, item) in f.items.iter().enumerate() {
            transitions.push((item_ctx(f, i), item.entry));
        }
    }
    let markov = MarkovTables::build(transitions);

    // Layout: item sizes are context-dependent (escape opcodes) but not
    // offset-dependent, so one pass suffices.
    let mut code = Vec::new();
    let mut functions = Vec::new();
    for f in &funcs {
        let start = code.len() as u32;
        let mut offsets = Vec::with_capacity(f.items.len());
        let mut local = 0u32;
        for (i, item) in f.items.iter().enumerate() {
            offsets.push(local);
            let ctx = item_ctx(f, i);
            let entry = &dictionary[item.entry as usize];
            let size =
                markov.opcode_len(ctx, item.entry) + (entry.wildcard_bits() as usize).div_ceil(8);
            local += size as u32;
        }
        if local > u32::from(u16::MAX) {
            return Err(BriscError::Compress(format!(
                "function {} exceeds the 16-bit branch-offset space",
                f.name
            )));
        }

        // Extra leaders: leader items whose predecessor falls through.
        let mut extra_leaders = Vec::new();
        for (i, item_is_leader) in f.leaders.iter().enumerate() {
            if !item_is_leader || i == 0 {
                continue;
            }
            let prev_entry = &dictionary[f.items[i - 1].entry as usize];
            let prev_last = prev_entry.patterns.last().expect("entries are nonempty");
            let prev_ends = prev_last.canonical().ends_block();
            if !prev_ends {
                extra_leaders.push(offsets[i]);
            }
        }

        // Encode, patching targets from item indices to byte offsets.
        for (i, item) in f.items.iter().enumerate() {
            let ctx = item_ctx(f, i);
            markov.encode_opcode(ctx, item.entry, &mut code)?;
            let entry = &dictionary[item.entry as usize];
            let mut bits = BitWriter::new();
            let mut values = item.values.iter();
            for p in &entry.patterns {
                for pf in &p.fields {
                    if let PatternField::Wildcard(kind) = pf {
                        let v = values
                            .next()
                            .ok_or_else(|| BriscError::Compress("item value underflow".into()))?;
                        write_field(*kind, v, &offsets, &func_index, &mut bits)?;
                    }
                }
            }
            if values.next().is_some() {
                return Err(BriscError::Compress("item value overflow".into()));
            }
            code.extend_from_slice(&bits.finish());
        }
        functions.push(BriscFunction {
            name: f.name.clone(),
            param_count: f.param_count,
            frame_size: f.frame_size,
            saved_regs: f.saved_regs.clone(),
            start,
            len: code.len() as u32 - start,
            extra_leaders,
        });
    }
    Ok(BriscImage {
        dictionary,
        markov,
        order0,
        globals,
        functions,
        code,
    })
}

fn write_field(
    kind: FieldKind,
    value: &Field,
    offsets: &[u32],
    func_index: &HashMap<&str, u16>,
    bits: &mut BitWriter,
) -> Result<(), BriscError> {
    match (kind, value) {
        (FieldKind::Reg, Field::Reg(r)) => bits.write_bits(u64::from(r.number()), 4),
        (FieldKind::Imm(ImmEnc::X4), Field::Imm(v)) => {
            if !ImmEnc::X4.fits(*v) {
                return Err(BriscError::Compress(format!("{v} does not fit x4 field")));
            }
            bits.write_bits(u64::from(*v as u32 / 4), 4);
        }
        (FieldKind::Imm(ImmEnc::I8), Field::Imm(v)) => bits.write_bits(u64::from(*v as u8), 8),
        (FieldKind::Imm(ImmEnc::I16), Field::Imm(v)) => bits.write_bits(u64::from(*v as u16), 16),
        (FieldKind::Imm(ImmEnc::I32), Field::Imm(v)) => bits.write_bits(u64::from(*v as u32), 32),
        (FieldKind::Target, Field::Target(item_idx)) => {
            let off = *offsets.get(*item_idx as usize).ok_or_else(|| {
                BriscError::Compress(format!("branch target item {item_idx} out of range"))
            })?;
            bits.write_bits(u64::from(off), 16);
        }
        (FieldKind::Func, Field::Func(name)) => {
            let idx = match func_index.get(name.as_str()) {
                Some(&i) => i,
                None => {
                    let host = codecomp_ir::eval::HOST_FUNCTIONS
                        .iter()
                        .position(|&h| h == name)
                        .ok_or_else(|| {
                            BriscError::Compress(format!("undefined call target {name}"))
                        })?;
                    HOST_FUNC_BASE + host as u16
                }
            };
            bits.write_bits(u64::from(idx), 16);
        }
        (k, v) => {
            return Err(BriscError::Compress(format!(
                "field kind {k:?} got value {v:?}"
            )));
        }
    }
    Ok(())
}

// ---- byte-level serialization ----------------------------------------------------

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Rd<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    /// Bytes left to read; bounds `with_capacity` pre-allocation so a
    /// forged count cannot request more memory than the input could
    /// possibly describe.
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn u8(&mut self) -> Result<u8, BriscError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| BriscError::Corrupt("unexpected end of image".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BriscError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| BriscError::Corrupt("unexpected end of image".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn uvarint(&mut self) -> Result<u64, BriscError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 63 && b > 1 {
                return Err(BriscError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn ivarint(&mut self) -> Result<i64, BriscError> {
        let u = self.uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// A varint declaring an in-memory count or length, checked into
    /// `usize`: a value above `usize::MAX` (possible on 32-bit hosts)
    /// is structurally corrupt, never silently truncated.
    fn usize_varint(&mut self) -> Result<usize, BriscError> {
        usize::try_from(self.uvarint()?)
            .map_err(|_| BriscError::Corrupt("declared length exceeds address space".into()))
    }

    /// A varint whose value must fit the image's 32-bit offset space.
    fn u32_varint(&mut self) -> Result<u32, BriscError> {
        u32::try_from(self.uvarint()?)
            .map_err(|_| BriscError::Corrupt("value exceeds 32 bits".into()))
    }

    fn string(&mut self) -> Result<String, BriscError> {
        let len = self.usize_varint()?;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| BriscError::Corrupt("string is not UTF-8".into()))
    }
}

fn base_op_index() -> &'static (Vec<BaseOp>, HashMap<BaseOp, u8>) {
    static TABLE: OnceLock<(Vec<BaseOp>, HashMap<BaseOp, u8>)> = OnceLock::new();
    TABLE.get_or_init(|| {
        let all = BaseOp::all();
        assert!(all.len() <= 256);
        let index = all.iter().enumerate().map(|(i, &b)| (b, i as u8)).collect();
        (all, index)
    })
}

/// Serializes one dictionary entry (also defines its `P`-cost size).
pub fn serialize_entry(entry: &DictEntry) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, entry.patterns.len() as u64);
    for p in &entry.patterns {
        out.push(base_op_index().1[&p.base]);
        for f in &p.fields {
            match f {
                PatternField::Wildcard(FieldKind::Reg) => out.push(0x00),
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4)) => out.push(0x01),
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::I8)) => out.push(0x02),
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::I16)) => out.push(0x03),
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::I32)) => out.push(0x04),
                PatternField::Wildcard(FieldKind::Target) => out.push(0x05),
                PatternField::Wildcard(FieldKind::Func) => out.push(0x06),
                PatternField::Burned(Field::Reg(r)) => out.push(0x10 | r.number()),
                PatternField::Burned(Field::Imm(v)) => {
                    out.push(0x20);
                    put_ivarint(&mut out, i64::from(*v));
                }
                PatternField::Burned(other) => {
                    // Targets and function refs are never burned; encode
                    // defensively as an impossible tag.
                    debug_assert!(false, "unexpected burned field {other:?}");
                    out.push(0x7F);
                }
            }
        }
    }
    out
}

fn deserialize_entry(r: &mut Rd<'_>) -> Result<DictEntry, BriscError> {
    let n = r.usize_varint()?;
    if n == 0 || n > 16 {
        cov_hit!("brisc.entry.bad_pattern_count");
        return Err(BriscError::Corrupt(format!("bad pattern count {n}")));
    }
    let mut patterns = Vec::with_capacity(n);
    for _ in 0..n {
        let base_byte = r.u8()?;
        let Some(&base) = base_op_index().0.get(usize::from(base_byte)) else {
            cov_hit!("brisc.entry.bad_base_op");
            return Err(BriscError::Corrupt(format!("bad base op {base_byte}")));
        };
        let arity =
            codecomp_vm::encode::fields(&codecomp_vm::encode::canonical_instance(base)).len();
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tag = r.u8()?;
            fields.push(match tag {
                0x00 => PatternField::Wildcard(FieldKind::Reg),
                0x01 => PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4)),
                0x02 => PatternField::Wildcard(FieldKind::Imm(ImmEnc::I8)),
                0x03 => PatternField::Wildcard(FieldKind::Imm(ImmEnc::I16)),
                0x04 => PatternField::Wildcard(FieldKind::Imm(ImmEnc::I32)),
                0x05 => PatternField::Wildcard(FieldKind::Target),
                0x06 => PatternField::Wildcard(FieldKind::Func),
                t if t & 0xF0 == 0x10 => PatternField::Burned(Field::Reg(Reg::new(t & 0x0F))),
                0x20 => PatternField::Burned(Field::Imm(
                    i32::try_from(r.ivarint()?)
                        .map_err(|_| BriscError::Corrupt("burned imm out of range".into()))?,
                )),
                other => {
                    cov_hit!("brisc.entry.bad_field_tag");
                    return Err(BriscError::Corrupt(format!("bad field tag {other}")));
                }
            });
        }
        patterns.push(InstPattern { base, fields });
    }
    Ok(DictEntry { patterns })
}

/// Serializes the Markov tables (defines their charged size).
pub fn serialize_markov(markov: &MarkovTables) -> Vec<u8> {
    let mut out = Vec::new();
    let lists = markov.iter_sorted();
    put_uvarint(&mut out, lists.len() as u64);
    for (ctx, succ) in lists {
        put_uvarint(&mut out, u64::from(ctx));
        put_uvarint(&mut out, succ.len() as u64);
        for &e in succ {
            put_uvarint(&mut out, u64::from(e));
        }
    }
    out
}

fn deserialize_markov(
    r: &mut Rd<'_>,
    budget: &codecomp_core::Budget,
) -> Result<MarkovTables, BriscError> {
    let n = r.usize_varint()?;
    budget.check_table_entries(n as u64)?;
    budget.charge_fuel(n as u64)?;
    // Each list takes at least two bytes (context + count), each
    // successor at least one.
    let mut lists = Vec::with_capacity(n.min(r.remaining() / 2));
    for _ in 0..n {
        let ctx = r.u32_varint()?;
        let m = r.usize_varint()?;
        budget.check_table_entries(m as u64)?;
        budget.charge_fuel(m as u64)?;
        let mut succ = Vec::with_capacity(m.min(r.remaining()));
        for _ in 0..m {
            succ.push(r.u32_varint()?);
        }
        lists.push((ctx, succ));
    }
    Ok(MarkovTables::from_lists(lists))
}

impl BriscImage {
    /// Serializes the image.
    ///
    /// The header (dictionary, Markov tables, globals, function table) is
    /// load-time metadata the decompressor expands once, so the container
    /// DEFLATEs it; the *code* stream is stored raw — it must remain
    /// byte-addressable for in-place interpretation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Vec::new();
        put_uvarint(&mut header, self.dictionary.len() as u64);
        for e in &self.dictionary {
            header.extend_from_slice(&serialize_entry(e));
        }
        header.extend_from_slice(&serialize_markov(&self.markov));
        put_uvarint(&mut header, self.globals.len() as u64);
        for g in &self.globals {
            put_string(&mut header, &g.name);
            put_uvarint(&mut header, u64::from(g.size));
            put_uvarint(&mut header, g.init.len() as u64);
            header.extend_from_slice(&g.init);
        }
        put_uvarint(&mut header, self.functions.len() as u64);
        for f in &self.functions {
            put_string(&mut header, &f.name);
            put_uvarint(&mut header, f.param_count as u64);
            put_uvarint(&mut header, u64::from(f.frame_size));
            put_uvarint(&mut header, f.saved_regs.len() as u64);
            for r in &f.saved_regs {
                header.push(r.number());
            }
            put_uvarint(&mut header, u64::from(f.start));
            put_uvarint(&mut header, u64::from(f.len));
            put_uvarint(&mut header, f.extra_leaders.len() as u64);
            let mut prev = 0u32;
            for &l in &f.extra_leaders {
                put_uvarint(&mut header, u64::from(l - prev));
                prev = l;
            }
        }
        let packed_header =
            codecomp_flate::deflate_compress(&header, codecomp_flate::CompressionLevel::Best);
        let mut out = Vec::new();
        out.extend_from_slice(b"CCBR");
        out.push(u8::from(self.order0));
        put_uvarint(&mut out, packed_header.len() as u64);
        out.extend_from_slice(&packed_header);
        put_uvarint(&mut out, self.code.len() as u64);
        out.extend_from_slice(&self.code);
        out
    }

    /// Deserializes an image.
    ///
    /// # Errors
    ///
    /// [`BriscError::Corrupt`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<BriscImage, BriscError> {
        Self::from_bytes_budgeted(bytes, &codecomp_core::Budget::default())
    }

    /// Budget-governed [`Self::from_bytes`]: the header inflate, the
    /// dictionary / Markov / global / function table sizes, and the code
    /// blob are all checked against `budget` before allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::from_bytes`], plus [`BriscError::Limit`] when the
    /// budget trips.
    pub fn from_bytes_budgeted(
        bytes: &[u8],
        budget: &codecomp_core::Budget,
    ) -> Result<BriscImage, BriscError> {
        let mut outer = Rd { bytes, pos: 0 };
        if outer.take(4)? != b"CCBR" {
            cov_hit!("brisc.image.bad_magic");
            return Err(BriscError::Corrupt("bad magic".into()));
        }
        cov_hit!("brisc.image.magic_ok");
        let order0 = outer.u8()? != 0;
        let header_len = outer.usize_varint()?;
        let packed_header = outer.take(header_len)?;
        let header =
            codecomp_flate::inflate_budgeted(packed_header, budget).map_err(|e| match e {
                codecomp_flate::FlateError::LimitExceeded { limit } => {
                    cov_hit!("brisc.image.header_limit");
                    BriscError::Limit {
                        what: "header inflate output/fuel".into(),
                        limit,
                    }
                }
                other => {
                    cov_hit!("brisc.image.header_corrupt");
                    BriscError::Corrupt(format!("header: {other}"))
                }
            })?;
        cov_hit!("brisc.image.header_inflated");
        let mut r = Rd {
            bytes: &header,
            pos: 0,
        };
        let ndict = r.usize_varint()?;
        budget.check_table_entries(ndict as u64)?;
        budget.charge_fuel(ndict as u64)?;
        // Every entry takes at least two bytes (pattern count + base op).
        let mut dictionary = Vec::with_capacity(ndict.min(r.remaining() / 2));
        for _ in 0..ndict {
            dictionary.push(deserialize_entry(&mut r)?);
        }
        let markov = deserialize_markov(&mut r, budget)?;
        let nglobals = r.usize_varint()?;
        budget.check_table_entries(nglobals as u64)?;
        budget.charge_fuel(nglobals as u64)?;
        let mut globals = Vec::with_capacity(nglobals.min(r.remaining() / 3));
        for _ in 0..nglobals {
            let name = r.string()?;
            let size = r.u32_varint()?;
            let init_len = r.usize_varint()?;
            globals.push(VmGlobal {
                name,
                size,
                init: r.take(init_len)?.to_vec(),
            });
        }
        let nfuncs = r.usize_varint()?;
        budget.check_table_entries(nfuncs as u64)?;
        budget.charge_fuel(nfuncs as u64)?;
        let mut functions = Vec::with_capacity(nfuncs.min(r.remaining() / 4));
        for _ in 0..nfuncs {
            let name = r.string()?;
            let param_count = r.usize_varint()?;
            let frame_size = r.u32_varint()?;
            let nsaved = r.usize_varint()?;
            if nsaved > usize::from(Reg::COUNT) {
                cov_hit!("brisc.image.saved_regs_overflow");
                return Err(BriscError::Corrupt("too many saved registers".into()));
            }
            let mut saved_regs = Vec::with_capacity(nsaved);
            for _ in 0..nsaved {
                let n = r.u8()?;
                if n >= Reg::COUNT {
                    cov_hit!("brisc.image.bad_saved_reg");
                    return Err(BriscError::Corrupt("bad saved register".into()));
                }
                saved_regs.push(Reg::new(n));
            }
            let start = r.u32_varint()?;
            let len = r.u32_varint()?;
            let nleaders = r.usize_varint()?;
            let mut extra_leaders = Vec::with_capacity(nleaders.min(r.remaining()));
            let mut prev = 0u32;
            for _ in 0..nleaders {
                let delta = r.u32_varint()?;
                prev = prev
                    .checked_add(delta)
                    .ok_or_else(|| BriscError::Corrupt("leader offset overflow".into()))?;
                extra_leaders.push(prev);
            }
            functions.push(BriscFunction {
                name,
                param_count,
                frame_size,
                saved_regs,
                start,
                len,
                extra_leaders,
            });
        }
        if r.pos != header.len() {
            cov_hit!("brisc.image.trailing_header");
            return Err(BriscError::Corrupt("trailing header bytes".into()));
        }
        let code_len = outer.usize_varint()?;
        budget.check_output_bytes(code_len as u64)?;
        let code = outer.take(code_len)?.to_vec();
        if outer.pos != bytes.len() {
            cov_hit!("brisc.image.trailing_bytes");
            return Err(BriscError::Corrupt("trailing bytes".into()));
        }
        for f in &functions {
            if u64::from(f.start) + u64::from(f.len) > code.len() as u64 {
                cov_hit!("brisc.image.function_overruns_code");
                return Err(BriscError::Corrupt(format!(
                    "function {} extends past the code blob",
                    f.name
                )));
            }
        }
        cov_hit!("brisc.image.load_ok");
        codecomp_core::telemetry::gauge_set(
            "brisc.dictionary_entries",
            dictionary.len() as u64,
        );
        codecomp_core::telemetry::counter_add("brisc.image.loads", 1);
        Ok(BriscImage {
            dictionary,
            markov,
            order0,
            globals,
            functions,
            code,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::InstPattern;
    use codecomp_vm::asm::parse_inst;

    fn base_entry(s: &str) -> DictEntry {
        DictEntry::single(InstPattern::base_of(&parse_inst(s, 1).unwrap()))
    }

    #[test]
    fn entry_serialization_roundtrip() {
        let samples = [
            base_entry("mov.i n4,n0"),
            base_entry("ld.iw n0,4(sp)"),
            base_entry("enter sp,sp,24"),
            base_entry("ble.i n4,0,$L5"),
            base_entry("call pepper"),
            base_entry("epi"),
            DictEntry::combined(&base_entry("mov.i n4,n0"), &base_entry("mov.i n2,n1")),
        ];
        for e in &samples {
            let bytes = serialize_entry(e);
            let mut r = Rd {
                bytes: &bytes,
                pos: 0,
            };
            let back = deserialize_entry(&mut r).unwrap();
            assert_eq!(&back, e, "roundtrip failed for {e}");
            assert_eq!(r.pos, bytes.len());
        }
    }

    #[test]
    fn burned_fields_roundtrip() {
        let mut p = InstPattern::base_of(&parse_inst("ld.iw n0,4(sp)", 1).unwrap());
        p.fields[0] = PatternField::Burned(Field::Reg(Reg::new(0)));
        p.fields[1] = PatternField::Burned(Field::Imm(-300));
        let e = DictEntry::single(p);
        let bytes = serialize_entry(&e);
        let mut r = Rd {
            bytes: &bytes,
            pos: 0,
        };
        assert_eq!(deserialize_entry(&mut r).unwrap(), e);
    }

    /// A tiny hand-built program exercising assemble + decode_at.
    fn tiny_image() -> BriscImage {
        // Dictionary: [li *,*i8] = 0, [add.i *,*,*] = 1, [rjr *] = 2,
        // [j *] = 3.
        let dict = vec![
            base_entry("li n0,1"),
            base_entry("add.i n0,n1,n2"),
            base_entry("rjr ra"),
            base_entry("j $L0"),
        ];
        // Function: li n0,5; li n1,6; add n0,n0,n1; rjr ra.
        let items = vec![
            Item {
                entry: 0,
                values: vec![Field::Reg(Reg::new(0)), Field::Imm(5)],
            },
            Item {
                entry: 0,
                values: vec![Field::Reg(Reg::new(1)), Field::Imm(6)],
            },
            Item {
                entry: 1,
                values: vec![
                    Field::Reg(Reg::new(0)),
                    Field::Reg(Reg::new(0)),
                    Field::Reg(Reg::new(1)),
                ],
            },
            Item {
                entry: 2,
                values: vec![Field::Reg(Reg::RA)],
            },
        ];
        let f = FuncItems {
            name: "main".into(),
            param_count: 0,
            frame_size: 0,
            saved_regs: vec![],
            leaders: vec![true, false, false, false],
            items,
        };
        assemble(dict, vec![f], vec![]).unwrap()
    }

    #[test]
    fn assemble_and_decode() {
        let img = tiny_image();
        assert_eq!(img.functions.len(), 1);
        let mut pos = img.functions[0].start as usize;
        let mut ctx = BLOCK_START;
        let mut decoded = Vec::new();
        while pos < (img.functions[0].start + img.functions[0].len) as usize {
            let item = img.decode_at(pos, ctx).unwrap();
            ctx = item.entry;
            pos += item.size;
            decoded.extend(item.insts);
        }
        let expect: Vec<Inst> = ["li n0,5", "li n1,6", "add.i n0,n0,n1", "rjr ra"]
            .iter()
            .map(|s| parse_inst(s, 1).unwrap())
            .collect();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn image_bytes_roundtrip() {
        let img = tiny_image();
        let bytes = img.to_bytes();
        let back = BriscImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn corrupt_image_rejected() {
        let img = tiny_image();
        let bytes = img.to_bytes();
        assert!(BriscImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(BriscImage::from_bytes(b"XXXX").is_err());
        let mut bad = bytes.clone();
        bad[0] = b'Y';
        assert!(BriscImage::from_bytes(&bad).is_err());
    }

    #[test]
    fn oversized_markov_values_rejected_not_truncated() {
        // A context id or successor above u32::MAX must surface as
        // Corrupt, never be silently cast down to a valid-looking id.
        let budget = codecomp_core::Budget::default();
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, 1); // one list
        put_uvarint(&mut bytes, u64::MAX); // context id too big for u32
        put_uvarint(&mut bytes, 0); // no successors
        let mut r = Rd {
            bytes: &bytes,
            pos: 0,
        };
        assert!(matches!(
            deserialize_markov(&mut r, &budget),
            Err(BriscError::Corrupt(_))
        ));
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, 1);
        put_uvarint(&mut bytes, 7); // context
        put_uvarint(&mut bytes, 1); // one successor
        put_uvarint(&mut bytes, u64::from(u32::MAX) + 1); // successor too big
        let mut r = Rd {
            bytes: &bytes,
            pos: 0,
        };
        assert!(matches!(
            deserialize_markov(&mut r, &budget),
            Err(BriscError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_declared_lengths_rejected() {
        // u32_varint / usize_varint refuse values past their range.
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, u64::from(u32::MAX) + 1);
        let mut r = Rd {
            bytes: &bytes,
            pos: 0,
        };
        assert!(matches!(r.u32_varint(), Err(BriscError::Corrupt(_))));
        // A huge string length must fail cleanly (truncation), not wrap.
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, u64::MAX / 2);
        bytes.push(b'x');
        let mut r = Rd {
            bytes: &bytes,
            pos: 0,
        };
        assert!(r.string().is_err());
    }

    #[test]
    fn table_limit_trips_as_limit_not_corrupt() {
        let img = tiny_image();
        let bytes = img.to_bytes();
        let limits = codecomp_core::DecodeLimits {
            max_table_entries: 1, // the dictionary alone has 4 entries
            ..codecomp_core::DecodeLimits::default()
        };
        let err =
            BriscImage::from_bytes_budgeted(&bytes, &codecomp_core::Budget::new(limits))
                .unwrap_err();
        assert!(matches!(err, BriscError::Limit { .. }), "got {err:?}");
    }

    #[test]
    fn validation_scan_accepts_good_functions_and_meters_fuel() {
        let img = tiny_image();
        let budget = codecomp_core::Budget::default();
        img.validate_function(0, &budget).unwrap();
        // The tiny program has 4 items, so the scan spends exactly 4 fuel.
        assert_eq!(budget.usage().fuel_spent, 4);
        let starved = codecomp_core::Budget::new(codecomp_core::DecodeLimits {
            decode_fuel: 3,
            ..codecomp_core::DecodeLimits::default()
        });
        assert!(matches!(
            img.validate_function(0, &starved),
            Err(BriscError::Limit { .. })
        ));
    }

    #[test]
    fn branch_targets_patch_to_byte_offsets() {
        // f: L0: li n0,1; j L0 — jump target must be byte offset 0.
        let dict = vec![base_entry("li n0,1"), base_entry("j $L0")];
        let items = vec![
            Item {
                entry: 0,
                values: vec![Field::Reg(Reg::new(0)), Field::Imm(1)],
            },
            Item {
                entry: 1,
                values: vec![Field::Target(0)],
            }, // item index 0
        ];
        let f = FuncItems {
            name: "f".into(),
            param_count: 0,
            frame_size: 0,
            saved_regs: vec![],
            leaders: vec![true, false],
            items,
        };
        let img = assemble(dict, vec![f], vec![]).unwrap();
        let first = img.decode_at(0, BLOCK_START).unwrap();
        let second = img.decode_at(first.size, first.entry).unwrap();
        assert_eq!(second.insts[0], Inst::Jump { target: 0 });
    }

    #[test]
    fn extra_leaders_recorded_for_fallthrough_labels() {
        // li; li (leader: branch target); rjr — the middle item is a
        // leader but its predecessor falls through.
        let dict = vec![base_entry("li n0,1"), base_entry("rjr ra")];
        let items = vec![
            Item {
                entry: 0,
                values: vec![Field::Reg(Reg::new(0)), Field::Imm(1)],
            },
            Item {
                entry: 0,
                values: vec![Field::Reg(Reg::new(1)), Field::Imm(2)],
            },
            Item {
                entry: 1,
                values: vec![Field::Reg(Reg::RA)],
            },
        ];
        let f = FuncItems {
            name: "f".into(),
            param_count: 0,
            frame_size: 0,
            saved_regs: vec![],
            leaders: vec![true, true, false],
            items,
        };
        let img = assemble(dict, vec![f], vec![]).unwrap();
        assert_eq!(img.functions[0].extra_leaders.len(), 1);
        let leader_off = img.functions[0].extra_leaders[0];
        assert!(img.is_extra_leader(0, leader_off));
        // The item there decodes in BLOCK_START context.
        let item = img.decode_at(leader_off as usize, BLOCK_START).unwrap();
        assert_eq!(item.insts[0], parse_inst("li n1,2", 1).unwrap());
    }

    #[test]
    fn host_function_references() {
        let dict = vec![base_entry("call print_int"), base_entry("rjr ra")];
        let items = vec![
            Item {
                entry: 0,
                values: vec![Field::Func("print_int".into())],
            },
            Item {
                entry: 1,
                values: vec![Field::Reg(Reg::RA)],
            },
        ];
        let f = FuncItems {
            name: "f".into(),
            param_count: 0,
            frame_size: 0,
            saved_regs: vec![],
            leaders: vec![true, true], // after-call is a leader
            items,
        };
        let img = assemble(dict, vec![f], vec![]).unwrap();
        let item = img.decode_at(0, BLOCK_START).unwrap();
        assert_eq!(item.insts[0], parse_inst("call print_int", 1).unwrap());
    }
}
