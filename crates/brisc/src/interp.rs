//! Direct interpretation of compressed BRISC code.
//!
//! "Some applications, such as … working set reduction through direct
//! interpretation of compressed code, require a randomly addressable,
//! compact program representation" (§4). [`BriscMachine`] executes the
//! image *in place*: each step decodes the dictionary item at the
//! current byte offset (in its Markov context) and executes its
//! expansion; no decompressed copy of the program is ever built. The
//! per-item decode work is exactly the interpretation overhead the
//! paper's "~12×" figure measures, and the byte-range touch map feeds
//! the working-set experiment.

use crate::image::BriscImage;
use crate::markov::BLOCK_START;
use crate::BriscError;
use codecomp_core::cov_hit;
use codecomp_vm::interp::{alu_eval, cond_eval, DONE, FUNC_BASE, GLOBAL_BASE, HOST_BASE, RA_BASE};
use codecomp_vm::isa::{FuncRef, Inst, MemWidth};
use codecomp_vm::reg::Reg;

/// The result of a BRISC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BriscOutcome {
    /// The entry function's return value (`n0`).
    pub value: i64,
    /// Host-function output bytes.
    pub output: Vec<u8>,
    /// Instructions executed (after expansion).
    pub instructions: u64,
    /// Dictionary items decoded (each is one in-place decode operation).
    pub items_decoded: u64,
    /// Calls performed.
    pub calls: u64,
}

/// An interpreter over a compressed image.
#[derive(Debug)]
pub struct BriscMachine<'a> {
    image: &'a BriscImage,
    mem: Vec<u8>,
    regs: [i64; 16],
    output: Vec<u8>,
    fuel: u64,
    instructions: u64,
    items_decoded: u64,
    calls: u64,
    /// Per-function quarantine records from the governed load scan.
    quarantine: Vec<Option<codecomp_core::DecodeError>>,
    /// Per-code-byte touch map for working-set measurement.
    pub code_touched: Vec<bool>,
}

impl<'a> BriscMachine<'a> {
    /// Prepares memory and global layout (identical to the VM machine's).
    ///
    /// # Errors
    ///
    /// [`BriscError::Exec`] if globals do not fit.
    pub fn new(image: &'a BriscImage, mem_size: u32, fuel: u64) -> Result<Self, BriscError> {
        let mut mem = vec![0u8; mem_size as usize];
        let mut next = GLOBAL_BASE;
        for g in &image.globals {
            let aligned64 = u64::from(next).div_ceil(4) * 4;
            if aligned64 + u64::from(g.size) > u64::from(mem_size) {
                return Err(BriscError::Exec(format!("global {} does not fit", g.name)));
            }
            let aligned = aligned64 as u32;
            let start = aligned as usize;
            let n = g.init.len().min(g.size as usize);
            mem[start..start + n].copy_from_slice(&g.init[..n]);
            next = aligned + g.size;
        }
        Ok(Self {
            code_touched: vec![false; image.code.len()],
            quarantine: vec![None; image.functions.len()],
            image,
            mem,
            regs: [0; 16],
            output: Vec::new(),
            fuel,
            instructions: 0,
            items_decoded: 0,
            calls: 0,
        })
    }

    /// [`Self::new`] plus a load-time validation scan of every function
    /// under `limits` (each probed with its own fresh meter, so one
    /// oversized function cannot drain its siblings'). Functions that
    /// fail are *quarantined* instead of failing the whole image:
    /// execution that reaches one traps with
    /// [`BriscError::Quarantined`], and everything else runs normally.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    pub fn new_governed(
        image: &'a BriscImage,
        mem_size: u32,
        fuel: u64,
        limits: codecomp_core::DecodeLimits,
    ) -> Result<Self, BriscError> {
        let mut m = Self::new(image, mem_size, fuel)?;
        for i in 0..image.functions.len() {
            let budget = codecomp_core::Budget::new(limits);
            if let Err(e) = image.validate_function(i, &budget) {
                cov_hit!("brisc.interp.quarantine_on_load");
                let cause = codecomp_core::DecodeError::from(e);
                if codecomp_core::telemetry::enabled() {
                    codecomp_core::telemetry::counter_add("brisc.interp.quarantines", 1);
                    codecomp_core::telemetry::event(
                        "brisc.quarantine",
                        vec![
                            ("function", image.functions[i].name.as_str().into()),
                            ("cause", cause.to_string().into()),
                        ],
                    );
                }
                m.quarantine[i] = Some(cause);
            }
        }
        Ok(m)
    }

    /// Quarantined functions with the failure that poisoned each.
    pub fn quarantined_functions(&self) -> Vec<(String, codecomp_core::DecodeError)> {
        self.quarantine
            .iter()
            .enumerate()
            .filter_map(|(i, q)| {
                q.as_ref()
                    .map(|c| (self.image.functions[i].name.clone(), c.clone()))
            })
            .collect()
    }

    /// Re-validates one quarantined function under `limits` — the
    /// recovery path for a function that only failed on limits. On
    /// success its quarantine record is cleared; a function that fails
    /// again stays quarantined with the fresh cause.
    ///
    /// # Errors
    ///
    /// [`BriscError::Exec`] for unknown names; the validation failure
    /// itself when the function still does not decode.
    pub fn revalidate(
        &mut self,
        name: &str,
        limits: codecomp_core::DecodeLimits,
    ) -> Result<(), BriscError> {
        let idx = self
            .image
            .function_index(name)
            .ok_or_else(|| BriscError::Exec(format!("undefined function {name}")))?;
        let budget = codecomp_core::Budget::new(limits);
        match self.image.validate_function(idx, &budget) {
            Ok(()) => {
                self.quarantine[idx] = None;
                codecomp_core::telemetry::event(
                    "brisc.revalidate",
                    vec![("function", name.into()), ("recovered", true.into())],
                );
                Ok(())
            }
            Err(e) => {
                self.quarantine[idx] = Some(codecomp_core::DecodeError::from(e.clone()));
                Err(e)
            }
        }
    }

    /// Runs `entry` with the given arguments.
    ///
    /// # Errors
    ///
    /// [`BriscError::Exec`] on faults or fuel exhaustion;
    /// [`BriscError::Corrupt`] if decoding fails mid-run.
    pub fn run(&mut self, entry: &str, args: &[i64]) -> Result<BriscOutcome, BriscError> {
        let _span = codecomp_core::telemetry::span("brisc.run");
        let _prof = codecomp_core::profile::scope("brisc.run");
        let (fuel_before, instrs_before) = (self.fuel, self.instructions);
        let result = self.run_inner(entry, args);
        if codecomp_core::telemetry::enabled() {
            use codecomp_core::telemetry as t;
            t::counter_add("brisc.interp.dispatches", self.instructions - instrs_before);
            t::counter_add("brisc.interp.fuel_consumed", fuel_before - self.fuel);
            if let Err(BriscError::Quarantined { name, cause }) = &result {
                t::event(
                    "brisc.quarantine_trap",
                    vec![
                        ("function", name.as_str().into()),
                        ("cause", cause.to_string().into()),
                    ],
                );
            }
        }
        result
    }

    fn run_inner(&mut self, entry: &str, args: &[i64]) -> Result<BriscOutcome, BriscError> {
        let entry_idx = self
            .image
            .function_index(entry)
            .ok_or_else(|| BriscError::Exec(format!("undefined entry function {entry}")))?;
        let staging = (args.len().max(1) as u32) * 4;
        let top = (self.mem.len() as u32 & !3)
            .checked_sub(staging)
            .ok_or_else(|| BriscError::Exec("memory too small for arguments".into()))?;
        self.set_reg(Reg::SP, i64::from(top));
        for (i, &a) in args.iter().enumerate() {
            self.store(top + 4 * i as u32, MemWidth::Word, a)?;
        }
        for (i, &a) in args.iter().take(4).enumerate() {
            self.regs[i] = a;
        }
        self.set_reg(Reg::RA, i64::from(RA_BASE + DONE));
        self.calls += 1;

        let mut pc = self.image.functions[entry_idx].start as usize;
        let mut ctx = BLOCK_START;
        loop {
            if self.fuel == 0 {
                cov_hit!("brisc.interp.fuel_exhausted");
                return Err(BriscError::Exec("fuel exhausted".into()));
            }
            self.fuel -= 1;
            let Some(func) = self.image.function_at(pc) else {
                cov_hit!("brisc.interp.pc_outside_functions");
                return Err(BriscError::Exec(format!("pc {pc} outside all functions")));
            };
            if let Some(cause) = &self.quarantine[func] {
                cov_hit!("brisc.interp.quarantine_trap");
                return Err(BriscError::Quarantined {
                    name: self.image.functions[func].name.clone(),
                    cause: cause.clone(),
                });
            }
            let item = self.image.decode_at(pc, ctx)?;
            self.items_decoded += 1;
            for b in &mut self.code_touched[pc..pc + item.size] {
                *b = true;
            }
            let func_start = self.image.functions[func].start as usize;

            let mut transfer: Option<(usize, u32)> = None; // (new pc, new ctx)
            let mut done = false;
            for inst in &item.insts {
                self.instructions += 1;
                match self.step(inst, func, func_start, pc + item.size)? {
                    Flow::Continue => {}
                    Flow::Goto(new_pc) => {
                        transfer = Some((new_pc, BLOCK_START));
                        break;
                    }
                    Flow::Done => {
                        done = true;
                        break;
                    }
                }
            }
            if done {
                return Ok(BriscOutcome {
                    value: self.regs[0],
                    output: std::mem::take(&mut self.output),
                    instructions: self.instructions,
                    items_decoded: self.items_decoded,
                    calls: self.calls,
                });
            }
            match transfer {
                Some((new_pc, new_ctx)) => {
                    pc = new_pc;
                    ctx = new_ctx;
                }
                None => {
                    let next = pc + item.size;
                    // Serialized entries always hold at least one pattern,
                    // but a decoded dictionary handed in directly may not.
                    let last = item
                        .insts
                        .last()
                        .ok_or_else(|| BriscError::Corrupt("empty dictionary entry".into()))?;
                    let next_local = (next - func_start) as u32;
                    ctx = if last.ends_block() || self.image.is_extra_leader(func, next_local) {
                        BLOCK_START
                    } else {
                        item.entry
                    };
                    pc = next;
                }
            }
        }
    }

    fn reg(&self, r: Reg) -> i64 {
        self.regs[usize::from(r.number())]
    }

    fn set_reg(&mut self, r: Reg, v: i64) {
        self.regs[usize::from(r.number())] = i64::from(v as i32);
    }

    fn step(
        &mut self,
        inst: &Inst,
        func: usize,
        func_start: usize,
        return_to: usize,
    ) -> Result<Flow, BriscError> {
        match inst {
            Inst::Li { rd, imm } => {
                self.set_reg(*rd, i64::from(*imm));
                Ok(Flow::Continue)
            }
            Inst::Mov { rd, rs } => {
                self.set_reg(*rd, self.reg(*rs));
                Ok(Flow::Continue)
            }
            Inst::Alu { op, rd, rs, rt } => {
                let v = alu_eval(*op, self.reg(*rs), self.reg(*rt))
                    .map_err(|e| BriscError::Exec(e.to_string()))?;
                self.set_reg(*rd, v);
                Ok(Flow::Continue)
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = alu_eval(*op, self.reg(*rs), i64::from(*imm))
                    .map_err(|e| BriscError::Exec(e.to_string()))?;
                self.set_reg(*rd, v);
                Ok(Flow::Continue)
            }
            Inst::Neg { rd, rs } => {
                self.set_reg(*rd, -self.reg(*rs));
                Ok(Flow::Continue)
            }
            Inst::Not { rd, rs } => {
                self.set_reg(*rd, !self.reg(*rs));
                Ok(Flow::Continue)
            }
            Inst::Sext { width, rd, rs } => {
                let v = self.reg(*rs);
                let v = match width {
                    MemWidth::Byte => i64::from(v as i8),
                    MemWidth::Short => i64::from(v as i16),
                    MemWidth::Word => i64::from(v as i32),
                };
                self.set_reg(*rd, v);
                Ok(Flow::Continue)
            }
            Inst::Load {
                width,
                rd,
                off,
                base,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*off as u32);
                let v = self.load(addr, *width)?;
                self.set_reg(*rd, v);
                Ok(Flow::Continue)
            }
            Inst::Store {
                width,
                rs,
                off,
                base,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*off as u32);
                self.store(addr, *width, self.reg(*rs))?;
                Ok(Flow::Continue)
            }
            Inst::Spill { rs, off } => {
                let addr = (self.reg(Reg::SP) as u32).wrapping_add(*off as u32);
                self.store(addr, MemWidth::Word, self.reg(*rs))?;
                Ok(Flow::Continue)
            }
            Inst::Reload { rd, off } => {
                let addr = (self.reg(Reg::SP) as u32).wrapping_add(*off as u32);
                let v = self.load(addr, MemWidth::Word)?;
                self.set_reg(*rd, v);
                Ok(Flow::Continue)
            }
            Inst::Enter { amount } => {
                self.set_reg(Reg::SP, self.reg(Reg::SP) - i64::from(*amount));
                Ok(Flow::Continue)
            }
            Inst::Exit { amount } => {
                self.set_reg(Reg::SP, self.reg(Reg::SP) + i64::from(*amount));
                Ok(Flow::Continue)
            }
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                if cond_eval(*cond, self.reg(*rs), self.reg(*rt)) {
                    Ok(Flow::Goto(func_start + *target as usize))
                } else {
                    Ok(Flow::Continue)
                }
            }
            Inst::BranchImm {
                cond,
                rs,
                imm,
                target,
            } => {
                if cond_eval(*cond, self.reg(*rs), i64::from(*imm)) {
                    Ok(Flow::Goto(func_start + *target as usize))
                } else {
                    Ok(Flow::Continue)
                }
            }
            Inst::Jump { target } => Ok(Flow::Goto(func_start + *target as usize)),
            Inst::Call {
                target: FuncRef::Symbol(name),
            } => self.call_name(name, return_to),
            Inst::CallR { rs } => {
                let addr = self.reg(*rs) as u32;
                self.call_addr(addr, return_to)
            }
            Inst::Rjr { rs } => self.return_to(self.reg(*rs) as u32),
            Inst::Epi => {
                let f = &self.image.functions[func];
                let sp = self.reg(Reg::SP) as u32;
                let slots: Vec<(Reg, i32)> = f
                    .saved_regs
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| (r, f.frame_size as i32 - 8 - 4 * i as i32))
                    .collect();
                let ra_slot = f.frame_size as i32 - 4;
                let frame = f.frame_size;
                for (r, slot) in slots {
                    let v = self.load(sp.wrapping_add(slot as u32), MemWidth::Word)?;
                    self.set_reg(r, v);
                }
                let ra = self.load(sp.wrapping_add(ra_slot as u32), MemWidth::Word)?;
                self.set_reg(Reg::RA, ra);
                self.set_reg(Reg::SP, i64::from(sp) + i64::from(frame));
                self.return_to(ra as u32)
            }
            Inst::Bcopy { rd, rs, rn } => {
                let dst = self.reg(*rd) as u32;
                let src = self.reg(*rs) as u32;
                let n = self.reg(*rn) as u32;
                for i in 0..n {
                    let b = self.load(src.wrapping_add(i), MemWidth::Byte)?;
                    self.store(dst.wrapping_add(i), MemWidth::Byte, b)?;
                }
                Ok(Flow::Continue)
            }
            Inst::Bzero { rd, rn } => {
                let dst = self.reg(*rd) as u32;
                let n = self.reg(*rn) as u32;
                for i in 0..n {
                    self.store(dst.wrapping_add(i), MemWidth::Byte, 0)?;
                }
                Ok(Flow::Continue)
            }
            Inst::Nop => Ok(Flow::Continue),
            Inst::Label(_) => Err(BriscError::Exec("label in decoded stream".into())),
        }
    }

    fn call_name(&mut self, name: &str, return_to: usize) -> Result<Flow, BriscError> {
        self.calls += 1;
        if let Some(idx) = self.image.function_index(name) {
            self.set_reg(Reg::RA, i64::from(RA_BASE) + return_to as i64);
            return Ok(Flow::Goto(self.image.functions[idx].start as usize));
        }
        self.host_call(name)?;
        Ok(Flow::Continue)
    }

    fn call_addr(&mut self, addr: u32, return_to: usize) -> Result<Flow, BriscError> {
        self.calls += 1;
        if (HOST_BASE..RA_BASE).contains(&addr) {
            let idx = (addr - HOST_BASE) as usize;
            let name = codecomp_ir::eval::HOST_FUNCTIONS
                .get(idx)
                .ok_or_else(|| BriscError::Exec("bad host address".into()))?;
            self.host_call(name)?;
            return Ok(Flow::Continue);
        }
        if (FUNC_BASE..HOST_BASE).contains(&addr) {
            let idx = (addr - FUNC_BASE) as usize;
            let f = self
                .image
                .functions
                .get(idx)
                .ok_or_else(|| BriscError::Exec(format!("bad function address {addr:#x}")))?;
            self.set_reg(Reg::RA, i64::from(RA_BASE) + return_to as i64);
            return Ok(Flow::Goto(f.start as usize));
        }
        cov_hit!("brisc.interp.call_bad_address");
        Err(BriscError::Exec(format!(
            "call to non-function address {addr:#x}"
        )))
    }

    fn return_to(&mut self, addr: u32) -> Result<Flow, BriscError> {
        if addr == RA_BASE + DONE {
            return Ok(Flow::Done);
        }
        if addr >= RA_BASE {
            return Ok(Flow::Goto((addr - RA_BASE) as usize));
        }
        cov_hit!("brisc.interp.return_bad_address");
        Err(BriscError::Exec(format!(
            "jump to non-code address {addr:#x}"
        )))
    }

    fn host_call(&mut self, name: &str) -> Result<(), BriscError> {
        match name {
            "print_int" => {
                let v = self.regs[0] as i32;
                self.output.extend_from_slice(v.to_string().as_bytes());
                self.output.push(b'\n');
                self.regs[0] = 0;
                Ok(())
            }
            "print_char" => {
                self.output.push(self.regs[0] as u8);
                self.regs[0] = 0;
                Ok(())
            }
            other => {
                cov_hit!("brisc.interp.unknown_host_fn");
                Err(BriscError::Exec(format!("unknown host function {other}")))
            }
        }
    }

    fn load(&self, addr: u32, width: MemWidth) -> Result<i64, BriscError> {
        let a = addr as usize;
        let size = width.bytes() as usize;
        if a == 0 || a + size > self.mem.len() {
            cov_hit!("brisc.interp.bad_load");
            return Err(BriscError::Exec(format!(
                "bad load of {size} bytes at {addr:#x}"
            )));
        }
        Ok(match width {
            MemWidth::Byte => i64::from(self.mem[a] as i8),
            MemWidth::Short => i64::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            MemWidth::Word => i64::from(i32::from_le_bytes([
                self.mem[a],
                self.mem[a + 1],
                self.mem[a + 2],
                self.mem[a + 3],
            ])),
        })
    }

    fn store(&mut self, addr: u32, width: MemWidth, value: i64) -> Result<(), BriscError> {
        let a = addr as usize;
        let size = width.bytes() as usize;
        if a == 0 || a + size > self.mem.len() {
            cov_hit!("brisc.interp.bad_store");
            return Err(BriscError::Exec(format!(
                "bad store of {size} bytes at {addr:#x}"
            )));
        }
        match width {
            MemWidth::Byte => self.mem[a] = value as u8,
            MemWidth::Short => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => self.mem[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        }
        Ok(())
    }

    /// Bytes of compressed code touched so far.
    pub fn touched_code_bytes(&self) -> usize {
        self.code_touched.iter().filter(|&&t| t).count()
    }

    /// The touched byte offsets as `(offset, len)` runs, for paging
    /// simulation.
    pub fn touched_runs(&self) -> Vec<(u32, u32)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &t) in self.code_touched.iter().enumerate() {
            match (t, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    runs.push((s as u32, (i - s) as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s as u32, (self.code_touched.len() - s) as u32));
        }
        runs
    }
}

enum Flow {
    Continue,
    Goto(usize),
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress, BriscOptions};
    use codecomp_front::compile;
    use codecomp_vm::codegen::compile_module;
    use codecomp_vm::interp::Machine;
    use codecomp_vm::isa::IsaConfig;

    /// Front end → VM interpreter and front end → BRISC interpreter must
    /// agree on value and output, under several compressor option sets.
    fn differential(src: &str, args: &[i64]) {
        let ir = compile(src).unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let expect = Machine::new(&vm, 1 << 20, 1 << 26)
            .unwrap()
            .run("main", args)
            .unwrap();
        let variants = [
            ("default", BriscOptions::default()),
            (
                "no-combination",
                BriscOptions {
                    combination: false,
                    ..Default::default()
                },
            ),
            (
                "no-specialization",
                BriscOptions {
                    specialization: false,
                    ..Default::default()
                },
            ),
            (
                "no-epi",
                BriscOptions {
                    epi: false,
                    ..Default::default()
                },
            ),
            (
                "order0",
                BriscOptions {
                    order0: true,
                    ..Default::default()
                },
            ),
            (
                "abundant",
                BriscOptions {
                    regime: codecomp_core::dict::MemoryRegime::Abundant,
                    ..Default::default()
                },
            ),
        ];
        for (name, options) in variants {
            let report = compress(&vm, options).unwrap();
            let mut m = BriscMachine::new(&report.image, 1 << 20, 1 << 26).unwrap();
            let got = m.run("main", args).unwrap();
            assert_eq!(got.value, expect.value, "value mismatch under {name}");
            assert_eq!(got.output, expect.output, "output mismatch under {name}");
            assert!(m.touched_code_bytes() > 0, "touch map empty under {name}");
        }
    }

    #[test]
    fn arithmetic_and_locals() {
        differential(
            "int main() { int x = 7; int y = x * 6; return y - (x % 3); }",
            &[],
        );
    }

    #[test]
    fn loops_and_branches() {
        differential(
            "int main() {
                 int s = 0; int i;
                 for (i = 0; i < 25; i++) { if (i % 3 == 0) continue; s += i; }
                 return s;
             }",
            &[],
        );
    }

    #[test]
    fn calls_and_recursion() {
        differential(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(11); }",
            &[],
        );
    }

    #[test]
    fn the_paper_example_runs_compressed() {
        differential(
            "int pepper(int a, int b) { return a + b; }
             int salt(int j, int i) { if (j > 0) { pepper(i, j); j--; } return j; }
             int main() { return salt(3, 9) * 10 + salt(0, 4); }",
            &[],
        );
    }

    #[test]
    fn arrays_strings_output() {
        differential(
            "char msg[6] = \"hello\";
             int main() {
                 int n = 0;
                 char *s = msg;
                 while (*s) { print_char(*s); s++; n++; }
                 print_int(n);
                 return n;
             }",
            &[],
        );
    }

    #[test]
    fn many_arguments() {
        differential(
            "int sum6(int a, int b, int c, int d, int e, int f) {
                 return a + b + c + d + e + f;
             }
             int main() { return sum6(1, 2, 3, 4, 5, 6); }",
            &[],
        );
    }

    #[test]
    fn entry_arguments_forwarded() {
        let ir = compile("int main(int a, int b) { return a * b + 1; }").unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let mut m = BriscMachine::new(&report.image, 1 << 20, 1 << 24).unwrap();
        assert_eq!(m.run("main", &[6, 7]).unwrap().value, 43);
    }

    #[test]
    fn faults_surface_as_errors() {
        let ir = compile("int main() { int x = 0; return 5 / x; }").unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let mut m = BriscMachine::new(&report.image, 1 << 20, 1 << 24).unwrap();
        assert!(m.run("main", &[]).is_err());
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let ir = compile("int main() { while (1) ; return 0; }").unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let mut m = BriscMachine::new(&report.image, 1 << 20, 1000).unwrap();
        assert!(matches!(m.run("main", &[]), Err(BriscError::Exec(_))));
    }

    #[test]
    fn governed_machine_quarantines_and_recovers() {
        let src = "
            int f(int x) { return x + 1; }
            int g(int x) { int i; int s = 0; for (i = 0; i < x; i++) s += i * i * x + i; return s; }
            int h(int x) { return g(x) + f(x); }
            int main() { return f(41); }
        ";
        let ir = compile(src).unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let image = &report.image;

        // Per-function decode cost under a generous meter; the scan's
        // fuel spend is deterministic, so it doubles as the boundary.
        let mut fuels = std::collections::HashMap::new();
        for (i, f) in image.functions.iter().enumerate() {
            let b = codecomp_core::Budget::default();
            image.validate_function(i, &b).unwrap();
            fuels.insert(f.name.clone(), b.usage().fuel_spent);
        }
        let g_fuel = fuels["g"];
        assert!(
            fuels.iter().all(|(n, &v)| n == "g" || v < g_fuel),
            "g must be the most expensive function: {fuels:?}"
        );
        let limits = codecomp_core::DecodeLimits {
            decode_fuel: g_fuel - 1,
            ..codecomp_core::DecodeLimits::default()
        };

        // Exactly g is quarantined, as a limit trip (never Malformed).
        let mut m = BriscMachine::new_governed(image, 1 << 20, 1 << 24, limits).unwrap();
        let q = m.quarantined_functions();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, "g");
        assert!(matches!(
            q[0].1,
            codecomp_core::DecodeError::LimitExceeded { .. }
        ));

        // The rest of the module runs normally.
        assert_eq!(m.run("main", &[]).unwrap().value, 42);

        // Reaching the quarantined function traps cleanly.
        let mut m2 = BriscMachine::new_governed(image, 1 << 20, 1 << 24, limits).unwrap();
        let err = m2.run("h", &[3]).unwrap_err();
        assert!(
            matches!(err, BriscError::Quarantined { ref name, .. } if name == "g"),
            "got {err:?}"
        );

        // Raising the budget recovers it.
        let mut m3 = BriscMachine::new_governed(image, 1 << 20, 1 << 24, limits).unwrap();
        m3.revalidate("g", codecomp_core::DecodeLimits::default())
            .unwrap();
        assert!(m3.quarantined_functions().is_empty());
        let expect = Machine::new(&vm, 1 << 20, 1 << 26)
            .unwrap()
            .run("h", &[3])
            .unwrap();
        assert_eq!(m3.run("h", &[3]).unwrap().value, expect.value);
    }

    #[test]
    fn working_set_smaller_than_whole_program_for_partial_execution() {
        // Only main and f are executed; g/h are dead weight.
        let src = "
            int f(int x) { return x + 1; }
            int g(int x) { int i; int s = 0; for (i = 0; i < x; i++) s += i * i; return s; }
            int h(int x) { return g(x) * g(x + 1) - f(x); }
            int main() { return f(41); }
        ";
        let ir = compile(src).unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let mut m = BriscMachine::new(&report.image, 1 << 20, 1 << 24).unwrap();
        m.run("main", &[]).unwrap();
        let touched = m.touched_code_bytes();
        assert!(touched > 0);
        assert!(
            touched < report.image.code_size() / 2,
            "touched {} of {} bytes",
            touched,
            report.image.code_size()
        );
        let runs = m.touched_runs();
        assert!(!runs.is_empty());
        let run_total: u32 = runs.iter().map(|&(_, l)| l).sum();
        assert_eq!(run_total as usize, touched);
    }
}
