//! Dictionary entries: instruction patterns with burned and wildcard fields.

use crate::BriscError;
use codecomp_vm::encode::{canonical_instance, fields, BaseOp, Field};
use codecomp_vm::isa::Inst;

/// How a wildcard immediate field is transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ImmEnc {
    /// 4 bits, value scaled by 4 (the paper's `-x4` forms).
    X4,
    /// Signed 8-bit.
    I8,
    /// Signed 16-bit.
    I16,
    /// 32-bit.
    I32,
}

impl ImmEnc {
    /// Bits occupied in the operand area.
    pub fn bits(self) -> u32 {
        match self {
            ImmEnc::X4 => 4,
            ImmEnc::I8 => 8,
            ImmEnc::I16 => 16,
            ImmEnc::I32 => 32,
        }
    }

    /// Whether `v` is representable.
    pub fn fits(self, v: i32) -> bool {
        match self {
            ImmEnc::X4 => v % 4 == 0 && (0..=60).contains(&v),
            ImmEnc::I8 => (-128..=127).contains(&v),
            ImmEnc::I16 => (-32_768..=32_767).contains(&v),
            ImmEnc::I32 => true,
        }
    }

    /// The narrowest non-scaled encoding for `v`.
    pub fn narrowest(v: i32) -> ImmEnc {
        if ImmEnc::I8.fits(v) {
            ImmEnc::I8
        } else if ImmEnc::I16.fits(v) {
            ImmEnc::I16
        } else {
            ImmEnc::I32
        }
    }
}

/// The kind (and transmission width) of one wildcard field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldKind {
    /// A 4-bit register field.
    Reg,
    /// An immediate with a chosen encoding.
    Imm(ImmEnc),
    /// A branch target (16-bit local byte offset).
    Target,
    /// A function reference (16-bit index).
    Func,
}

impl FieldKind {
    /// Bits occupied by a wildcard of this kind.
    pub fn bits(self) -> u32 {
        match self {
            FieldKind::Reg => 4,
            FieldKind::Imm(e) => e.bits(),
            FieldKind::Target | FieldKind::Func => 16,
        }
    }
}

/// One field position in a pattern: burned to a value, or wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternField {
    /// A specialized (burned-in) value.
    Burned(Field),
    /// An unspecified field transmitted per instance.
    Wildcard(FieldKind),
}

/// One instruction pattern, e.g. `[ld.iw n0,*(sp)]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstPattern {
    /// The base instruction.
    pub base: BaseOp,
    /// Field positions in canonical operand order.
    pub fields: Vec<PatternField>,
}

impl InstPattern {
    /// The all-wildcard pattern of an instruction, with immediates at
    /// their narrowest plain width.
    pub fn base_of(inst: &Inst) -> InstPattern {
        let fs = fields(inst);
        InstPattern {
            base: codecomp_vm::encode::base_op(inst),
            fields: fs
                .iter()
                .map(|f| {
                    PatternField::Wildcard(match f {
                        Field::Reg(_) => FieldKind::Reg,
                        Field::Imm(v) => FieldKind::Imm(ImmEnc::narrowest(*v)),
                        Field::Target(_) => FieldKind::Target,
                        Field::Func(_) => FieldKind::Func,
                    })
                })
                .collect(),
        }
    }

    /// Whether `inst` matches: bases equal, burned fields equal, and
    /// wildcard values representable.
    pub fn matches(&self, inst: &Inst) -> bool {
        if codecomp_vm::encode::base_op(inst) != self.base {
            return false;
        }
        let fs = fields(inst);
        if fs.len() != self.fields.len() {
            return false;
        }
        fs.iter().zip(&self.fields).all(|(f, p)| match p {
            PatternField::Burned(b) => f == b,
            PatternField::Wildcard(kind) => match (f, kind) {
                (Field::Reg(_), FieldKind::Reg) => true,
                (Field::Imm(v), FieldKind::Imm(enc)) => enc.fits(*v),
                (Field::Target(_), FieldKind::Target) => true,
                (Field::Func(_), FieldKind::Func) => true,
                _ => false,
            },
        })
    }

    /// The wildcard field values of a matching instruction, in order.
    ///
    /// # Panics
    ///
    /// Panics if `inst` does not match (callers check first).
    pub fn extract(&self, inst: &Inst) -> Vec<Field> {
        debug_assert!(self.matches(inst), "extract on non-matching instruction");
        fields(inst)
            .into_iter()
            .zip(&self.fields)
            .filter(|(_, p)| matches!(p, PatternField::Wildcard(_)))
            .map(|(f, _)| f)
            .collect()
    }

    /// Rebuilds an instruction from wildcard values (consumed in order).
    ///
    /// # Errors
    ///
    /// [`BriscError::Corrupt`] when values run short or mismatch.
    pub fn instantiate(
        &self,
        values: &mut impl Iterator<Item = Field>,
    ) -> Result<Inst, BriscError> {
        let mut full = Vec::with_capacity(self.fields.len());
        for p in &self.fields {
            match p {
                PatternField::Burned(f) => full.push(f.clone()),
                PatternField::Wildcard(_) => full.push(
                    values
                        .next()
                        .ok_or_else(|| BriscError::Corrupt("operand underflow".into()))?,
                ),
            }
        }
        codecomp_vm::encode::rebuild(self.base, &full)
            .map_err(|e| BriscError::Corrupt(e.to_string()))
    }

    /// Number of wildcard fields.
    pub fn wildcard_count(&self) -> usize {
        self.fields
            .iter()
            .filter(|p| matches!(p, PatternField::Wildcard(_)))
            .count()
    }

    /// Bits of wildcard operand data per instance.
    pub fn wildcard_bits(&self) -> u32 {
        self.fields
            .iter()
            .filter_map(|p| match p {
                PatternField::Wildcard(k) => Some(k.bits()),
                PatternField::Burned(_) => None,
            })
            .sum()
    }

    /// A canonical instance (wildcards zeroed) for native-cost estimation.
    pub fn canonical(&self) -> Inst {
        let base = canonical_instance(self.base);
        let shape = fields(&base);
        let full: Vec<Field> = shape
            .iter()
            .zip(&self.fields)
            .map(|(zero, p)| match p {
                PatternField::Burned(f) => f.clone(),
                PatternField::Wildcard(_) => zero.clone(),
            })
            .collect();
        codecomp_vm::encode::rebuild(self.base, &full).expect("canonical shape always rebuilds")
    }
}

impl std::fmt::Display for InstPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}", self.base.mnemonic())?;
        let mut first = true;
        for p in &self.fields {
            write!(f, "{}", if first { " " } else { "," })?;
            first = false;
            match p {
                PatternField::Burned(Field::Reg(r)) => write!(f, "{r}")?,
                PatternField::Burned(Field::Imm(v)) => write!(f, "{v}")?,
                PatternField::Burned(Field::Target(t)) => write!(f, "$L{t}")?,
                PatternField::Burned(Field::Func(n)) => write!(f, "{n}")?,
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4)) => write!(f, "*x4")?,
                PatternField::Wildcard(_) => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

/// A dictionary entry: one pattern, or an opcode-combined sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DictEntry {
    /// The component patterns, executed in order.
    pub patterns: Vec<InstPattern>,
}

impl DictEntry {
    /// A single-pattern entry.
    pub fn single(p: InstPattern) -> DictEntry {
        DictEntry { patterns: vec![p] }
    }

    /// Concatenates two entries (opcode combination).
    pub fn combined(a: &DictEntry, b: &DictEntry) -> DictEntry {
        DictEntry {
            patterns: a.patterns.iter().chain(&b.patterns).cloned().collect(),
        }
    }

    /// Number of component instructions.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the entry has no patterns (never true for valid entries).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Total wildcard bits per encoded instance.
    pub fn wildcard_bits(&self) -> u32 {
        self.patterns.iter().map(InstPattern::wildcard_bits).sum()
    }

    /// Encoded instance size: one opcode byte plus byte-padded operands.
    pub fn instance_bytes(&self) -> usize {
        1 + (self.wildcard_bits() as usize).div_ceil(8)
    }

    /// Serialized dictionary-transmission size in bytes (the `P` cost
    /// term "minus the number of bytes needed to represent the
    /// instruction pattern in the dictionary").
    pub fn dict_bytes(&self) -> usize {
        crate::image::serialize_entry(self).len()
    }

    /// The decompressor working-set cost `W`: the mean size of native
    /// expansions across a variable-width and a fixed-width target
    /// (the paper averages Pentium and PowerPC 601).
    pub fn native_table_cost(&self) -> usize {
        let mut x86 = codecomp_vm::native::X86Encoder::new();
        let mut fixed = 0usize;
        for p in &self.patterns {
            let inst = p.canonical();
            x86.emit(&inst);
            // Fixed-width proxy: 4 bytes per instruction, 8 for wide ops.
            fixed += match &inst {
                Inst::Call { .. } | Inst::Epi => 8,
                Inst::Bcopy { .. } | Inst::Bzero { .. } => 16,
                Inst::Branch { .. } | Inst::BranchImm { .. } => 8,
                _ => 4,
            };
        }
        (x86.bytes().len() + fixed) / 2
    }

    /// Whether every component of `insts` matches in order.
    pub fn matches_seq(&self, insts: &[&Inst]) -> bool {
        insts.len() == self.patterns.len()
            && self.patterns.iter().zip(insts).all(|(p, i)| p.matches(i))
    }
}

impl std::fmt::Display for DictEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.patterns.len() == 1 {
            write!(f, "{}", self.patterns[0])
        } else {
            write!(f, "<")?;
            for (i, p) in self.patterns.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ">")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_vm::asm::parse_inst;
    use codecomp_vm::reg::Reg;

    fn inst(s: &str) -> Inst {
        parse_inst(s, 1).unwrap()
    }

    #[test]
    fn imm_enc_fits() {
        assert!(ImmEnc::X4.fits(24));
        assert!(ImmEnc::X4.fits(0));
        assert!(ImmEnc::X4.fits(60));
        assert!(!ImmEnc::X4.fits(61));
        assert!(!ImmEnc::X4.fits(64));
        assert!(!ImmEnc::X4.fits(-4));
        assert!(!ImmEnc::X4.fits(26));
        assert!(ImmEnc::I8.fits(-128));
        assert!(!ImmEnc::I8.fits(128));
        assert_eq!(ImmEnc::narrowest(300), ImmEnc::I16);
    }

    #[test]
    fn base_pattern_matches_and_extracts() {
        let ld = inst("ld.iw n0,4(sp)");
        let pat = InstPattern::base_of(&ld);
        assert!(pat.matches(&ld));
        assert_eq!(pat.wildcard_count(), 3);
        let vals = pat.extract(&ld);
        assert_eq!(vals[0], Field::Reg(Reg::new(0)));
        assert_eq!(vals[1], Field::Imm(4));
        assert_eq!(vals[2], Field::Reg(Reg::SP));
        // Rebuild.
        let mut iter = vals.into_iter();
        assert_eq!(pat.instantiate(&mut iter).unwrap(), ld);
    }

    #[test]
    fn burned_fields_constrain_matching() {
        let ld = inst("ld.iw n0,4(sp)");
        let mut pat = InstPattern::base_of(&ld);
        // Burn the base register: [ld.iw *,*(sp)].
        pat.fields[2] = PatternField::Burned(Field::Reg(Reg::SP));
        assert!(pat.matches(&inst("ld.iw n3,8(sp)")));
        assert!(!pat.matches(&inst("ld.iw n3,8(n1)")));
        assert!(!pat.matches(&inst("ld.ib n3,8(sp)")));
        assert_eq!(pat.wildcard_count(), 2);
    }

    #[test]
    fn imm_width_constrains_matching() {
        let pat = InstPattern::base_of(&inst("ld.iw n0,4(sp)"));
        // Narrowest for 4 is I8: a 300 offset does not fit.
        assert!(!pat.matches(&inst("ld.iw n0,300(sp)")));
        assert!(pat.matches(&inst("ld.iw n0,-100(sp)")));
    }

    #[test]
    fn x4_narrowing() {
        let mut pat = InstPattern::base_of(&inst("enter sp,sp,24"));
        pat.fields[2] = PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4));
        assert!(pat.matches(&inst("enter sp,sp,24")));
        assert!(pat.matches(&inst("enter sp,sp,60")));
        assert!(!pat.matches(&inst("enter sp,sp,64")));
        assert!(!pat.matches(&inst("enter sp,sp,26")));
        // enter: two reg wildcards (8 bits) + x4 (4 bits) = 12 bits -> 2 bytes + opcode.
        assert_eq!(DictEntry::single(pat).instance_bytes(), 3);
    }

    #[test]
    fn instance_bytes_match_paper_example() {
        // Base [enter *,*,*] with I8 imm: 4+4+8 = 16 bits -> 3 bytes total.
        let base = InstPattern::base_of(&inst("enter sp,sp,24"));
        assert_eq!(DictEntry::single(base.clone()).instance_bytes(), 3);
        // [enter sp,*,*]: 4+8 = 12 bits -> 2 operand bytes... still 3.
        let mut sp1 = base.clone();
        sp1.fields[0] = PatternField::Burned(Field::Reg(Reg::SP));
        assert_eq!(DictEntry::single(sp1).instance_bytes(), 3);
        // [enter sp,sp,*] with I8: 8 bits -> 2 bytes, the paper's "2
        // bytes instead of 3".
        let mut sp2 = base.clone();
        sp2.fields[0] = PatternField::Burned(Field::Reg(Reg::SP));
        sp2.fields[1] = PatternField::Burned(Field::Reg(Reg::SP));
        assert_eq!(DictEntry::single(sp2).instance_bytes(), 2);
    }

    #[test]
    fn combination_saves_opcode_bytes() {
        let a = DictEntry::single(InstPattern::base_of(&inst("mov.i n4,n0")));
        let b = DictEntry::single(InstPattern::base_of(&inst("mov.i n2,n1")));
        let c = DictEntry::combined(&a, &b);
        assert_eq!(c.len(), 2);
        // Two separate: 2 + 2 = 4 bytes. Combined: 1 + ceil(16/8) = 3.
        assert_eq!(a.instance_bytes() + b.instance_bytes(), 4);
        assert_eq!(c.instance_bytes(), 3);
    }

    #[test]
    fn sub_byte_packing_combines_nibbles() {
        // <[mov.i *,n0],[mov.i *,n1]>: two 4-bit wildcards pack into one
        // byte — the "quantized" packing the paper describes.
        let mut a = InstPattern::base_of(&inst("mov.i n4,n0"));
        a.fields[1] = PatternField::Burned(Field::Reg(Reg::new(0)));
        let mut b = InstPattern::base_of(&inst("mov.i n2,n1"));
        b.fields[1] = PatternField::Burned(Field::Reg(Reg::new(1)));
        let c = DictEntry::combined(&DictEntry::single(a), &DictEntry::single(b));
        assert_eq!(c.wildcard_bits(), 8);
        assert_eq!(c.instance_bytes(), 2);
    }

    #[test]
    fn matches_seq_checks_order() {
        let a = inst("mov.i n4,n0");
        let b = inst("mov.i n2,n1");
        let e = DictEntry::combined(
            &DictEntry::single(InstPattern::base_of(&a)),
            &DictEntry::single(InstPattern::base_of(&b)),
        );
        assert!(e.matches_seq(&[&a, &b]));
        assert!(e.matches_seq(&[&b, &a]), "all-wildcard movs match any movs");
        assert!(!e.matches_seq(&[&a]));
        assert!(!e.matches_seq(&[&a, &inst("li n0,1")]));
    }

    #[test]
    fn native_cost_is_positive_and_display_works() {
        let e = DictEntry::single(InstPattern::base_of(&inst("enter sp,sp,24")));
        assert!(e.native_table_cost() > 0);
        assert_eq!(e.to_string(), "[enter *,*,*]");
        let mut p = InstPattern::base_of(&inst("enter sp,sp,24"));
        p.fields[0] = PatternField::Burned(Field::Reg(Reg::SP));
        p.fields[2] = PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4));
        assert_eq!(InstPattern::to_string(&p), "[enter sp,*,*x4]");
    }
}
