//! BRISC — Byte-coded RISC (paper §4).
//!
//! "Operand specialization and opcode combination … yield a dense,
//! randomly addressable program representation called BRISC", which can
//! be interpreted directly in compressed form or translated ("JIT") to
//! native code at high rates.
//!
//! The pipeline:
//!
//! 1. [`compress::compress`] takes a [`codecomp_vm::VmProgram`], replaces
//!    conventional epilogues with the `epi` macro-instruction, then runs
//!    the paper's greedy passes: candidates from one-field operand
//!    specialization, `-x4` immediate narrowing, and opcode combination
//!    over augmented operand-specialized sets of adjacent pairs; each
//!    candidate is scored `B = P − W` where `W` averages the native
//!    expansion size over a variable-width (x86-64) and a fixed-width
//!    (PowerPC-like) target; the top `K = 20` per pass are adopted; the
//!    hunt stops when a pass yields fewer than `K` positive candidates.
//! 2. An order-1 semi-static Markov model assigns byte opcodes per
//!    predecessor context so any number of dictionary entries fits 8-bit
//!    opcodes; basic-block leaders use a dedicated block-start context so
//!    the code stays randomly addressable at branch targets.
//! 3. [`image`] serializes dictionary, Markov tables, globals, function
//!    table, and per-function byte streams; branch targets become local
//!    byte offsets.
//! 4. [`interp::BriscMachine`] executes the compressed image *in place*,
//!    decoding each instruction as it is reached; no decompressed copy
//!    of the code exists.
//! 5. [`translate`] is the fast tier: one linear decode pass
//!    reconstructs a [`codecomp_vm::VmProgram`] (and can emit x86-64
//!    bytes, whose production rate is the paper's "MB/sec of produced
//!    code" metric).
//!
//! # Examples
//!
//! ```
//! use codecomp_front::compile;
//! use codecomp_vm::codegen::compile_module;
//! use codecomp_vm::isa::IsaConfig;
//! use codecomp_brisc::{compress::{compress, BriscOptions}, interp::BriscMachine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ir = compile("int main() { int i; int s = 0; for (i = 0; i < 10; i++) s += i; return s; }")?;
//! let vm = compile_module(&ir, IsaConfig::full())?;
//! let brisc = compress(&vm, BriscOptions::default())?;
//! let outcome = BriscMachine::new(&brisc.image, 1 << 20, 1 << 24)?.run("main", &[])?;
//! assert_eq!(outcome.value, 45);
//! # Ok(())
//! # }
//! ```

pub mod compress;
pub mod entry;
pub mod image;
pub mod interp;
pub mod markov;
pub mod translate;

pub use compress::{compress, BriscOptions, BriscReport};
pub use image::BriscImage;

use std::error::Error;
use std::fmt;

/// Errors across the BRISC crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BriscError {
    /// Compression failed.
    Compress(String),
    /// The serialized image is malformed.
    Corrupt(String),
    /// Execution failed.
    Exec(String),
    /// A decode budget tripped ([`codecomp_core::limits::DecodeLimits`]).
    Limit {
        /// Which limit tripped.
        what: String,
        /// The configured ceiling.
        limit: u64,
    },
    /// Execution reached a function quarantined by a decode failure.
    Quarantined {
        /// The quarantined function.
        name: String,
        /// Why its code failed to validate.
        cause: codecomp_core::DecodeError,
    },
}

impl fmt::Display for BriscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BriscError::Compress(m) => write!(f, "brisc compression error: {m}"),
            BriscError::Corrupt(m) => write!(f, "corrupt brisc image: {m}"),
            BriscError::Exec(m) => write!(f, "brisc execution error: {m}"),
            BriscError::Limit { what, limit } => {
                write!(f, "limit exceeded: {what} (limit {limit})")
            }
            BriscError::Quarantined { name, cause } => {
                write!(f, "function {name} is quarantined: {cause}")
            }
        }
    }
}

impl Error for BriscError {}

impl From<BriscError> for codecomp_core::DecodeError {
    fn from(e: BriscError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            BriscError::Corrupt(m) if m.contains("end of image") || m.contains("truncated") => {
                DecodeError::Truncated
            }
            BriscError::Corrupt(m) | BriscError::Exec(m) => DecodeError::malformed(m),
            BriscError::Compress(m) => DecodeError::Internal(m),
            BriscError::Limit { what, limit } => DecodeError::LimitExceeded { what, limit },
            // The quarantine already wraps the original decode failure.
            BriscError::Quarantined { cause, .. } => cause,
        }
    }
}

impl From<codecomp_core::DecodeError> for BriscError {
    fn from(e: codecomp_core::DecodeError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            DecodeError::Truncated => BriscError::Corrupt("unexpected end of image".into()),
            DecodeError::LimitExceeded { what, limit } => BriscError::Limit { what, limit },
            other => BriscError::Corrupt(other.to_string()),
        }
    }
}

impl From<codecomp_vm::VmError> for BriscError {
    fn from(e: codecomp_vm::VmError) -> Self {
        BriscError::Compress(e.to_string())
    }
}
