//! Order-1 semi-static Markov opcode assignment.
//!
//! §4: "To perform dictionary encoding, the compressor uses an order-1
//! semi-static Markov model so that all opcodes fit within 8 bits. …
//! the compressor builds (and the decompressor can build, based on the
//! dictionary) a table for each possible instruction pattern I that
//! enumerates the instruction patterns that can follow I. … There is a
//! special context in the Markov model for basic block beginnings … so
//! that the BRISC program remains interpretable."
//!
//! Concretely: per predecessor context (a dictionary entry, or the
//! dedicated block-start context used at every basic-block leader), the
//! successor entries observed in the program are ordered by frequency
//! and assigned bytes `0, 1, 2, …`. A context with 256 or more distinct
//! successors reserves byte 255 as an escape followed by the entry id in
//! two bytes (the paper splits over-full patterns instead; the escape is
//! operationally equivalent and simpler). The tables are transmitted in
//! the image and their size is charged to the compressed program.

use crate::BriscError;
use std::collections::HashMap;

/// The context id used at basic-block leaders.
pub const BLOCK_START: u32 = u32::MAX;

/// Escape byte used in contexts with ≥ 256 successors.
const ESCAPE: u8 = 255;

/// Per-context opcode tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkovTables {
    /// Context → successor entry ids, byte-code order (index = byte).
    contexts: HashMap<u32, Vec<u32>>,
}

impl MarkovTables {
    /// Builds tables from the observed `(context, entry)` transitions,
    /// ordering each context's successors by descending frequency
    /// (ties: smaller entry id first) so common successors get small
    /// bytes.
    pub fn build(transitions: impl IntoIterator<Item = (u32, u32)>) -> MarkovTables {
        let mut counts: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
        for (ctx, entry) in transitions {
            *counts.entry(ctx).or_default().entry(entry).or_insert(0) += 1;
        }
        let mut contexts = HashMap::new();
        for (ctx, succ) in counts {
            let mut ordered: Vec<(u32, u64)> = succ.into_iter().collect();
            ordered.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            contexts.insert(ctx, ordered.into_iter().map(|(e, _)| e).collect());
        }
        MarkovTables { contexts }
    }

    /// Successor list of a context (empty if unseen).
    pub fn successors(&self, ctx: u32) -> &[u32] {
        self.contexts.get(&ctx).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All contexts, for serialization (sorted for determinism).
    pub fn iter_sorted(&self) -> Vec<(u32, &[u32])> {
        let mut v: Vec<(u32, &[u32])> = self
            .contexts
            .iter()
            .map(|(&c, s)| (c, s.as_slice()))
            .collect();
        v.sort_by_key(|&(c, _)| c);
        v
    }

    /// Rebuilds from serialized form.
    pub fn from_lists(lists: Vec<(u32, Vec<u32>)>) -> MarkovTables {
        MarkovTables {
            contexts: lists.into_iter().collect(),
        }
    }

    /// Whether this context uses the escape mechanism.
    fn escaped(&self, ctx: u32) -> bool {
        self.successors(ctx).len() > usize::from(ESCAPE)
    }

    /// Appends the opcode byte(s) selecting `entry` in `ctx`.
    ///
    /// # Errors
    ///
    /// [`BriscError::Compress`] if the transition was never observed.
    pub fn encode_opcode(&self, ctx: u32, entry: u32, out: &mut Vec<u8>) -> Result<(), BriscError> {
        let succ = self.successors(ctx);
        let pos = succ.iter().position(|&e| e == entry).ok_or_else(|| {
            BriscError::Compress(format!("transition {ctx}->{entry} missing from model"))
        })?;
        if self.escaped(ctx) && pos >= usize::from(ESCAPE) {
            out.push(ESCAPE);
            let id = u16::try_from(entry)
                .map_err(|_| BriscError::Compress("entry id exceeds u16".into()))?;
            out.extend_from_slice(&id.to_le_bytes());
        } else {
            out.push(pos as u8);
        }
        Ok(())
    }

    /// Bytes the opcode for `entry` in `ctx` will occupy (1 or 3).
    pub fn opcode_len(&self, ctx: u32, entry: u32) -> usize {
        let succ = self.successors(ctx);
        match succ.iter().position(|&e| e == entry) {
            Some(pos) if self.escaped(ctx) && pos >= usize::from(ESCAPE) => 3,
            _ => 1,
        }
    }

    /// Decodes an opcode at `bytes[*pos..]`, advancing `pos`.
    ///
    /// # Errors
    ///
    /// [`BriscError::Corrupt`] on truncation or invalid codes.
    pub fn decode_opcode(
        &self,
        ctx: u32,
        bytes: &[u8],
        pos: &mut usize,
    ) -> Result<u32, BriscError> {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| BriscError::Corrupt("opcode past end of code".into()))?;
        *pos += 1;
        if self.escaped(ctx) && b == ESCAPE {
            let lo = bytes.get(*pos).copied();
            let hi = bytes.get(*pos + 1).copied();
            *pos += 2;
            let (Some(lo), Some(hi)) = (lo, hi) else {
                return Err(BriscError::Corrupt("escape opcode truncated".into()));
            };
            return Ok(u32::from(u16::from_le_bytes([lo, hi])));
        }
        self.successors(ctx)
            .get(usize::from(b))
            .copied()
            .ok_or_else(|| BriscError::Corrupt(format!("opcode {b} invalid in context {ctx}")))
    }

    /// Serialized size of the tables, charged to the program image.
    pub fn table_bytes(&self) -> usize {
        // uvarint overheads approximated by the real serializer.
        crate::image::serialize_markov(self).len()
    }

    /// Number of contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// The largest successor-set size (the paper reports "at most 244").
    pub fn max_successors(&self) -> usize {
        self.contexts.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_successor_gets_byte_zero() {
        let t = MarkovTables::build(vec![(1, 7), (1, 7), (1, 9), (1, 7)]);
        assert_eq!(t.successors(1), &[7, 9]);
        let mut out = Vec::new();
        t.encode_opcode(1, 7, &mut out).unwrap();
        assert_eq!(out, vec![0]);
        t.encode_opcode(1, 9, &mut out).unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn roundtrip_decode() {
        let t = MarkovTables::build(vec![
            (BLOCK_START, 3),
            (BLOCK_START, 5),
            (BLOCK_START, 3),
            (3, 5),
            (5, 3),
        ]);
        let mut bytes = Vec::new();
        let seq = [(BLOCK_START, 3u32), (3, 5), (5, 3), (BLOCK_START, 5)];
        for &(ctx, e) in &seq {
            t.encode_opcode(ctx, e, &mut bytes).unwrap();
        }
        let mut pos = 0;
        for &(ctx, e) in &seq {
            assert_eq!(t.decode_opcode(ctx, &bytes, &mut pos).unwrap(), e);
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn unknown_transition_rejected() {
        let t = MarkovTables::build(vec![(1, 2)]);
        let mut out = Vec::new();
        assert!(t.encode_opcode(1, 99, &mut out).is_err());
        assert!(t.encode_opcode(42, 2, &mut out).is_err());
    }

    #[test]
    fn invalid_byte_rejected() {
        let t = MarkovTables::build(vec![(1, 2)]);
        let mut pos = 0;
        assert!(t.decode_opcode(1, &[5], &mut pos).is_err());
        let mut pos = 0;
        assert!(t.decode_opcode(1, &[], &mut pos).is_err());
    }

    #[test]
    fn escape_mechanism_handles_wide_contexts() {
        // 300 distinct successors in one context.
        let transitions: Vec<(u32, u32)> = (0..300u32)
            .flat_map(|e| {
                // Make entry 0 most frequent so ordering is deterministic.
                std::iter::repeat_n((7u32, e), if e == 0 { 5 } else { 1 })
            })
            .collect();
        let t = MarkovTables::build(transitions);
        assert_eq!(t.successors(7).len(), 300);
        assert_eq!(t.max_successors(), 300);
        // Entry at position 0: single byte.
        let first = t.successors(7)[0];
        assert_eq!(t.opcode_len(7, first), 1);
        // Entry at position 299: escape (3 bytes).
        let deep = t.successors(7)[299];
        assert_eq!(t.opcode_len(7, deep), 3);
        let mut bytes = Vec::new();
        t.encode_opcode(7, first, &mut bytes).unwrap();
        t.encode_opcode(7, deep, &mut bytes).unwrap();
        assert_eq!(bytes.len(), 4);
        let mut pos = 0;
        assert_eq!(t.decode_opcode(7, &bytes, &mut pos).unwrap(), first);
        assert_eq!(t.decode_opcode(7, &bytes, &mut pos).unwrap(), deep);
    }

    #[test]
    fn serialization_lists_roundtrip() {
        let t = MarkovTables::build(vec![(1, 2), (1, 3), (2, 1), (BLOCK_START, 1)]);
        let lists: Vec<(u32, Vec<u32>)> = t
            .iter_sorted()
            .into_iter()
            .map(|(c, s)| (c, s.to_vec()))
            .collect();
        let back = MarkovTables::from_lists(lists);
        assert_eq!(back, t);
    }
}
