//! The BRISC compression algorithm (paper §4).
//!
//! Greedy dictionary construction: each pass scans the current program,
//! generating candidate instruction patterns by one-field operand
//! specialization, `-x4` immediate narrowing, and opcode combination
//! over the augmented operand-specialized sets of adjacent pairs; each
//! candidate is scored `B = P − W`; the top `K` are adopted; the
//! program is rewritten (combinations first, one new pattern per pair,
//! then compacting specializations); the hunt stops when a pass yields
//! fewer than `K` positive candidates.

use crate::entry::{DictEntry, FieldKind, ImmEnc, InstPattern, PatternField};
use crate::image::{assemble_with, BriscImage, FuncItems, Item};
use crate::BriscError;
use codecomp_core::dict::{select_top_k, Benefit, MemoryRegime, PassPolicy};
use codecomp_vm::encode::{fields, Field};
use codecomp_vm::isa::Inst;
use codecomp_vm::program::{VmFunction, VmProgram};
use codecomp_vm::reg::Reg;
use std::collections::{HashMap, HashSet};

/// Compressor knobs; the default matches the paper (`K = 20`, order-1
/// Markov, all candidate generators on).
#[derive(Debug, Clone, Copy)]
pub struct BriscOptions {
    /// Candidates adopted per pass.
    pub k: usize,
    /// Safety cap on passes.
    pub max_passes: usize,
    /// `B = P − W` or abundant-memory `B = P`.
    pub regime: MemoryRegime,
    /// Generate one-field operand specializations.
    pub specialization: bool,
    /// Generate opcode combinations of adjacent pairs.
    pub combination: bool,
    /// Generate `-x4` scaled-immediate narrowings.
    pub x4: bool,
    /// Replace conventional epilogues with the `epi` macro-instruction.
    pub epi: bool,
    /// Use a single context instead of the order-1 Markov model.
    pub order0: bool,
    /// Extra bytes charged against `P` per adopted entry, modeling the
    /// growth of the transmitted Markov tables (the paper charges only
    /// the dictionary entry itself; this knob exists for the ablation).
    pub table_charge: u32,
}

impl Default for BriscOptions {
    fn default() -> Self {
        Self {
            k: 20,
            max_passes: 64,
            regime: MemoryRegime::Constrained,
            specialization: true,
            combination: true,
            x4: true,
            epi: true,
            order0: false,
            table_charge: 0,
        }
    }
}

/// Compression outcome: the image plus statistics.
#[derive(Debug, Clone)]
pub struct BriscReport {
    /// The compressed program.
    pub image: BriscImage,
    /// Passes executed.
    pub passes: usize,
    /// Total candidates tested (the paper reports 93,211 for gcc-2.6.3).
    pub candidates_tested: usize,
    /// Final dictionary size including base entries (gcc: 1232).
    pub dictionary_entries: usize,
    /// Base entries among them.
    pub base_entries: usize,
    /// Input size: the quantized base VM encoding of the program.
    pub input_bytes: usize,
}

/// One element of the working program: a dictionary entry applied to a
/// run of original instructions.
#[derive(Debug, Clone)]
struct CItem {
    entry: u32,
    insts: Vec<Inst>,
    /// Original index of the first instruction (for target remapping).
    first_inst: usize,
}

#[derive(Debug)]
struct CFunc {
    name: String,
    param_count: usize,
    frame_size: u32,
    saved_regs: Vec<Reg>,
    items: Vec<CItem>,
    /// Leader flags parallel to `items`.
    leaders: Vec<bool>,
}

/// Compresses a VM program into a BRISC image.
///
/// # Errors
///
/// [`BriscError`] on programs outside the representable envelope
/// (functions over 64 KiB of compressed code, > 65280 functions, …).
pub fn compress(program: &VmProgram, options: BriscOptions) -> Result<BriscReport, BriscError> {
    let _span = codecomp_core::telemetry::span("brisc.compress");
    let _prof = codecomp_core::profile::scope("brisc.compress");
    let input_bytes = codecomp_vm::encode::code_segment_size(program);
    let mut dictionary: Vec<DictEntry> = Vec::new();
    let mut dict_index: HashMap<DictEntry, u32> = HashMap::new();
    let mut seen: HashSet<DictEntry> = HashSet::new();

    // ---- build the initial item sequence (base entries only) ----
    let mut funcs = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        funcs.push(build_cfunc(f, options, &mut dictionary, &mut dict_index)?);
    }
    let base_entries = dictionary.len();
    for e in &dictionary {
        seen.insert(e.clone());
    }

    // ---- greedy passes ----
    let policy = PassPolicy {
        k: options.k,
        max_passes: options.max_passes,
        regime: options.regime,
    };
    let mut passes = 0usize;
    let mut candidates_tested = 0usize;
    let mut seen_keys: HashSet<CandKey> = HashSet::new();
    loop {
        passes += 1;
        let entry_bits: Vec<u32> = dictionary.iter().map(DictEntry::wildcard_bits).collect();
        let mut candidates: HashMap<CandKey, (i64, u64)> = HashMap::new(); // total_saved, sites
        for f in &funcs {
            generate_candidates(
                f,
                &dictionary,
                &entry_bits,
                options,
                &seen_keys,
                &mut candidates,
            );
        }
        candidates_tested += candidates.len();
        // Materialize once per unique key; merge keys that denote the
        // same resulting pattern; drop entries already in the dictionary
        // or previously rejected ("a hash table of previously generated
        // candidates").
        let mut merged: HashMap<DictEntry, (i64, u64)> = HashMap::new();
        for (key, (saved, sites)) in &candidates {
            let entry = materialize(*key, &dictionary);
            if seen.contains(&entry) {
                continue;
            }
            let e = merged.entry(entry).or_insert((0, 0));
            e.0 += saved;
            e.1 += sites;
        }
        for key in candidates.into_keys() {
            seen_keys.insert(key);
        }
        let scored: Vec<(DictEntry, Benefit)> = {
            let mut v: Vec<(DictEntry, (i64, u64))> = merged.into_iter().collect();
            // Deterministic order for tie-breaking inside select_top_k.
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v.into_iter()
                .map(|(entry, (total_saved, _sites))| {
                    let p =
                        total_saved - entry.dict_bytes() as i64 - i64::from(options.table_charge);
                    let w = entry.native_table_cost() as i64;
                    (
                        entry,
                        Benefit {
                            size_reduction: p,
                            table_cost: w,
                        },
                    )
                })
                .collect()
        };
        let adopted = select_top_k(scored, options.k, options.regime);
        let adopted_count = adopted.len();
        let mut new_ids = Vec::with_capacity(adopted_count);
        for (entry, _) in adopted {
            seen.insert(entry.clone());
            let id = dictionary.len() as u32;
            dict_index.insert(entry.clone(), id);
            dictionary.push(entry);
            new_ids.push(id);
        }
        if adopted_count > 0 {
            for f in &mut funcs {
                rewrite(f, &dictionary, &new_ids);
            }
        }
        if !policy.continue_after(adopted_count, passes) {
            break;
        }
    }

    // ---- convert to image items ----
    let mut out_funcs = Vec::with_capacity(funcs.len());
    for f in &funcs {
        // Map original instruction index -> item index.
        let mut inst_to_item = HashMap::new();
        for (idx, item) in f.items.iter().enumerate() {
            inst_to_item.insert(item.first_inst, idx as u32);
        }
        let mut items = Vec::with_capacity(f.items.len());
        for item in &f.items {
            let entry = &dictionary[item.entry as usize];
            let mut values = Vec::new();
            for (p, inst) in entry.patterns.iter().zip(&item.insts) {
                for v in p.extract(inst) {
                    values.push(match v {
                        Field::Target(inst_idx) => Field::Target(
                            *inst_to_item.get(&(inst_idx as usize)).ok_or_else(|| {
                                BriscError::Compress(format!(
                                    "branch target {inst_idx} is not an item start in {}",
                                    f.name
                                ))
                            })?,
                        ),
                        other => other,
                    });
                }
            }
            items.push(Item {
                entry: item.entry,
                values,
            });
        }
        out_funcs.push(FuncItems {
            name: f.name.clone(),
            param_count: f.param_count,
            frame_size: f.frame_size,
            saved_regs: f.saved_regs.clone(),
            items,
            leaders: f.leaders.clone(),
        });
    }
    let globals = program.globals.clone();
    let image = assemble_with(dictionary, out_funcs, globals, options.order0)?;
    {
        use codecomp_core::telemetry as t;
        t::gauge_set("brisc.dictionary_entries", image.dictionary.len() as u64);
        t::gauge_set("brisc.base_entries", base_entries as u64);
        t::counter_add("brisc.compress.programs", 1);
        t::counter_add("brisc.compress.input_bytes", input_bytes as u64);
        t::counter_add("brisc.compress.candidates_tested", candidates_tested as u64);
    }
    Ok(BriscReport {
        dictionary_entries: image.dictionary.len(),
        base_entries,
        image,
        passes,
        candidates_tested,
        input_bytes,
    })
}

// ---- initial program construction ---------------------------------------------

fn build_cfunc(
    f: &VmFunction,
    options: BriscOptions,
    dictionary: &mut Vec<DictEntry>,
    dict_index: &mut HashMap<DictEntry, u32>,
) -> Result<CFunc, BriscError> {
    // Epilogue peephole (on the labeled form, so labels stay aligned).
    let code = if options.epi {
        replace_epilogues(f)
    } else {
        f.code.clone()
    };

    // Strip labels, mapping label -> instruction index.
    let mut insts: Vec<Inst> = Vec::with_capacity(code.len());
    let mut label_at: HashMap<u32, usize> = HashMap::new();
    for inst in &code {
        match inst {
            Inst::Label(l) => {
                label_at.insert(*l, insts.len());
            }
            other => insts.push(other.clone()),
        }
    }
    // Rewrite branch targets to instruction indices.
    let resolve = |l: u32| -> Result<u32, BriscError> {
        label_at
            .get(&l)
            .map(|&i| i as u32)
            .ok_or_else(|| BriscError::Compress(format!("unresolved label {l} in {}", f.name)))
    };
    let mut targets: HashSet<usize> = HashSet::new();
    for inst in &mut insts {
        match inst {
            Inst::Branch { target, .. }
            | Inst::BranchImm { target, .. }
            | Inst::Jump { target } => {
                *target = resolve(*target)?;
                targets.insert(*target as usize);
            }
            _ => {}
        }
    }

    // Instruction-level leaders.
    let mut leaders = vec![false; insts.len()];
    for (i, leader) in leaders.iter_mut().enumerate() {
        *leader = i == 0 || targets.contains(&i) || (i > 0 && insts[i - 1].ends_block());
    }

    // Items: one per instruction, on its base entry.
    let mut items = Vec::with_capacity(insts.len());
    for (i, inst) in insts.iter().enumerate() {
        let base = DictEntry::single(InstPattern::base_of(inst));
        let id = *dict_index.entry(base.clone()).or_insert_with(|| {
            dictionary.push(base);
            dictionary.len() as u32 - 1
        });
        items.push(CItem {
            entry: id,
            insts: vec![inst.clone()],
            first_inst: i,
        });
    }
    Ok(CFunc {
        name: f.name.clone(),
        param_count: f.param_count,
        frame_size: f.frame_size,
        saved_regs: f.saved_regs.clone(),
        items,
        leaders,
    })
}

/// Replaces the conventional epilogue (`reload`*, `reload ra`, `exit`,
/// `rjr ra`) with the `epi` macro-instruction when it matches the
/// function's frame layout exactly.
fn replace_epilogues(f: &VmFunction) -> Vec<Inst> {
    if f.frame_size == 0 {
        return f.code.clone();
    }
    let mut expect: Vec<Inst> = Vec::new();
    for (i, &r) in f.saved_regs.iter().enumerate() {
        expect.push(Inst::Reload {
            rd: r,
            off: f.saved_slot(i),
        });
    }
    expect.push(Inst::Reload {
        rd: Reg::RA,
        off: f.ra_slot(),
    });
    expect.push(Inst::Exit {
        amount: f.frame_size as i32,
    });
    expect.push(Inst::Rjr { rs: Reg::RA });

    let mut out = Vec::with_capacity(f.code.len());
    let mut i = 0usize;
    while i < f.code.len() {
        if f.code[i..].starts_with(&expect) {
            out.push(Inst::Epi);
            i += expect.len();
        } else {
            out.push(f.code[i].clone());
            i += 1;
        }
    }
    out
}

// ---- candidate generation -----------------------------------------------------

/// A specializable field value (targets and function refs never burn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FieldVal {
    Reg(u8),
    Imm(i32),
}

/// A zero-or-one-field modification of a dictionary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SpecDesc {
    /// The entry unchanged.
    Identity,
    /// One wildcard field burned to a value.
    Burn { pi: u8, fi: u8, v: FieldVal },
    /// One plain immediate wildcard narrowed to the 4-bit `-x4` form.
    X4 { pi: u8, fi: u8 },
}

/// A candidate, identified without materializing the entry — candidate
/// generation runs millions of times per pass, so keys stay `Copy` and
/// allocation-free; the `DictEntry` is built once per unique candidate
/// at scoring time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CandKey {
    Single {
        entry: u32,
        spec: SpecDesc,
    },
    Pair {
        a: u32,
        sa: SpecDesc,
        b: u32,
        sb: SpecDesc,
    },
}

/// Applies a spec to an entry, producing the materialized pattern.
fn apply_spec(entry: &DictEntry, spec: SpecDesc) -> DictEntry {
    match spec {
        SpecDesc::Identity => entry.clone(),
        SpecDesc::Burn { pi, fi, v } => {
            let mut e = entry.clone();
            e.patterns[usize::from(pi)].fields[usize::from(fi)] = PatternField::Burned(match v {
                FieldVal::Reg(n) => Field::Reg(Reg::new(n)),
                FieldVal::Imm(i) => Field::Imm(i),
            });
            e
        }
        SpecDesc::X4 { pi, fi } => {
            let mut e = entry.clone();
            e.patterns[usize::from(pi)].fields[usize::from(fi)] =
                PatternField::Wildcard(FieldKind::Imm(ImmEnc::X4));
            e
        }
    }
}

/// Materializes a candidate key into a dictionary entry.
fn materialize(key: CandKey, dictionary: &[DictEntry]) -> DictEntry {
    match key {
        CandKey::Single { entry, spec } => apply_spec(&dictionary[entry as usize], spec),
        CandKey::Pair { a, sa, b, sb } => DictEntry::combined(
            &apply_spec(&dictionary[a as usize], sa),
            &apply_spec(&dictionary[b as usize], sb),
        ),
    }
}

/// Wildcard bits of an entry after applying a spec, from cached base bits.
fn bits_after(entry: &DictEntry, base_bits: u32, spec: SpecDesc) -> u32 {
    match spec {
        SpecDesc::Identity => base_bits,
        SpecDesc::Burn { pi, fi, .. } => {
            let PatternField::Wildcard(kind) =
                &entry.patterns[usize::from(pi)].fields[usize::from(fi)]
            else {
                unreachable!("specs only name wildcard fields");
            };
            base_bits - kind.bits()
        }
        SpecDesc::X4 { pi, fi } => {
            let PatternField::Wildcard(FieldKind::Imm(enc)) =
                &entry.patterns[usize::from(pi)].fields[usize::from(fi)]
            else {
                unreachable!("x4 specs only name immediate wildcards");
            };
            base_bits - (enc.bits() - 4)
        }
    }
}

/// Enumerates the non-identity specs an item instance admits.
fn specs_of(entry: &DictEntry, insts: &[Inst], options: BriscOptions, out: &mut Vec<SpecDesc>) {
    out.clear();
    for (pi, pattern) in entry.patterns.iter().enumerate() {
        let inst_fields = fields(&insts[pi]);
        for (fi, pf) in pattern.fields.iter().enumerate() {
            let PatternField::Wildcard(kind) = pf else {
                continue;
            };
            match kind {
                FieldKind::Reg => {
                    if options.specialization {
                        let Field::Reg(r) = inst_fields[fi] else {
                            unreachable!()
                        };
                        out.push(SpecDesc::Burn {
                            pi: pi as u8,
                            fi: fi as u8,
                            v: FieldVal::Reg(r.number()),
                        });
                    }
                }
                FieldKind::Imm(enc) => {
                    let Field::Imm(v) = inst_fields[fi] else {
                        unreachable!()
                    };
                    if options.specialization {
                        out.push(SpecDesc::Burn {
                            pi: pi as u8,
                            fi: fi as u8,
                            v: FieldVal::Imm(v),
                        });
                    }
                    if options.x4 && *enc != ImmEnc::X4 && ImmEnc::X4.fits(v) {
                        out.push(SpecDesc::X4 {
                            pi: pi as u8,
                            fi: fi as u8,
                        });
                    }
                }
                FieldKind::Target | FieldKind::Func => {}
            }
        }
    }
}

/// Whether an item may be the non-final component of a combination: it
/// must fall through and must not be a call (the return address would
/// land mid-item) or a branch (whose successor is a block leader anyway).
fn can_lead_combination(item: &CItem) -> bool {
    let last = item.insts.last().expect("items are nonempty");
    last.falls_through()
        && !matches!(
            last,
            Inst::Call { .. } | Inst::CallR { .. } | Inst::Branch { .. } | Inst::BranchImm { .. }
        )
}

fn generate_candidates(
    f: &CFunc,
    dictionary: &[DictEntry],
    entry_bits: &[u32],
    options: BriscOptions,
    seen_keys: &HashSet<CandKey>,
    candidates: &mut HashMap<CandKey, (i64, u64)>,
) {
    let inst_bytes = |bits: u32| 1 + (bits as usize).div_ceil(8);
    let mut consider = |key: CandKey, old_bytes: usize, new_bytes: usize| {
        if new_bytes >= old_bytes || seen_keys.contains(&key) {
            return;
        }
        let e = candidates.entry(key).or_insert((0, 0));
        e.0 += (old_bytes - new_bytes) as i64;
        e.1 += 1;
    };

    let mut specs_a: Vec<SpecDesc> = Vec::new();
    let mut specs_b: Vec<SpecDesc> = Vec::new();
    for (i, item) in f.items.iter().enumerate() {
        let entry = &dictionary[item.entry as usize];
        let bits = entry_bits[item.entry as usize];
        let old = inst_bytes(bits);
        specs_of(entry, &item.insts, options, &mut specs_a);
        for &spec in &specs_a {
            consider(
                CandKey::Single {
                    entry: item.entry,
                    spec,
                },
                old,
                inst_bytes(bits_after(entry, bits, spec)),
            );
        }
        if options.combination && i + 1 < f.items.len() {
            let next = &f.items[i + 1];
            if !f.leaders[i + 1] && can_lead_combination(item) {
                let next_entry = &dictionary[next.entry as usize];
                let next_bits = entry_bits[next.entry as usize];
                let pair_old = old + inst_bytes(next_bits);
                specs_of(next_entry, &next.insts, options, &mut specs_b);
                for sa in std::iter::once(SpecDesc::Identity).chain(specs_a.iter().copied()) {
                    let a_bits = bits_after(entry, bits, sa);
                    for sb in std::iter::once(SpecDesc::Identity).chain(specs_b.iter().copied()) {
                        let b_bits = bits_after(next_entry, next_bits, sb);
                        consider(
                            CandKey::Pair {
                                a: item.entry,
                                sa,
                                b: next.entry,
                                sb,
                            },
                            pair_old,
                            inst_bytes(a_bits + b_bits),
                        );
                    }
                }
            }
        }
    }
}

// ---- program rewriting ----------------------------------------------------------

fn rewrite(f: &mut CFunc, dictionary: &[DictEntry], new_ids: &[u32]) {
    let new_combined: Vec<u32> = new_ids
        .iter()
        .copied()
        .filter(|&id| dictionary[id as usize].len() > 1)
        .collect();

    // Phase 1: combinations, greedy left-to-right, best (smallest) match
    // per pair ("on each pass, there can only be one new instruction
    // pattern that applies to a particular pair").
    let mut items = Vec::with_capacity(f.items.len());
    let mut leaders = Vec::with_capacity(f.leaders.len());
    let mut i = 0usize;
    while i < f.items.len() {
        let mut merged = false;
        if i + 1 < f.items.len() && !f.leaders[i + 1] && can_lead_combination(&f.items[i]) {
            let a = &f.items[i];
            let b = &f.items[i + 1];
            let combined_len = a.insts.len() + b.insts.len();
            let concat: Vec<&Inst> = a.insts.iter().chain(&b.insts).collect();
            let old_bytes = dictionary[a.entry as usize].instance_bytes()
                + dictionary[b.entry as usize].instance_bytes();
            let best = new_combined
                .iter()
                .copied()
                .filter(|&id| {
                    let e = &dictionary[id as usize];
                    e.len() == combined_len
                        && e.instance_bytes() < old_bytes
                        && e.matches_seq(&concat)
                })
                .min_by_key(|&id| dictionary[id as usize].instance_bytes());
            if let Some(id) = best {
                items.push(CItem {
                    entry: id,
                    insts: concat.into_iter().cloned().collect(),
                    first_inst: a.first_inst,
                });
                leaders.push(f.leaders[i]);
                i += 2;
                merged = true;
            }
        }
        if !merged {
            items.push(f.items[i].clone());
            leaders.push(f.leaders[i]);
            i += 1;
        }
    }

    // Phase 2: compacting specializations over all new entries.
    for item in &mut items {
        let current_bytes = dictionary[item.entry as usize].instance_bytes();
        let refs: Vec<&Inst> = item.insts.iter().collect();
        let best = new_ids
            .iter()
            .copied()
            .filter(|&id| {
                let e = &dictionary[id as usize];
                e.len() == item.insts.len()
                    && e.instance_bytes() < current_bytes
                    && e.matches_seq(&refs)
            })
            .min_by_key(|&id| dictionary[id as usize].instance_bytes());
        if let Some(id) = best {
            item.entry = id;
        }
    }

    f.items = items;
    f.leaders = leaders;
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;
    use codecomp_vm::codegen::compile_module;
    use codecomp_vm::isa::IsaConfig;

    fn vm_program(src: &str) -> VmProgram {
        compile_module(&compile(src).unwrap(), IsaConfig::full()).unwrap()
    }

    fn salty_program() -> VmProgram {
        vm_program(
            "int pepper(int a, int b) { return a + b; }
             int salt(int j, int i) { if (j > 0) { pepper(i, j); j--; } return j; }
             int main() { return salt(3, 9); }",
        )
    }

    #[test]
    fn compresses_and_produces_an_image() {
        let report = compress(&salty_program(), BriscOptions::default()).unwrap();
        assert!(report.dictionary_entries >= report.base_entries);
        assert!(report.passes >= 1);
        assert!(report.image.code_size() > 0);
        assert!(report.input_bytes > 0);
    }

    #[test]
    fn epi_replaces_conventional_epilogues() {
        let p = salty_program();
        let salt = p.function("salt").unwrap();
        let rewritten = replace_epilogues(salt);
        assert!(rewritten.contains(&Inst::Epi), "epilogue should become epi");
        assert!(
            !rewritten.iter().any(|i| matches!(i, Inst::Exit { .. })),
            "exit should be folded into epi"
        );
        // Original count shrinks by (saved reloads + ra reload + exit + rjr - 1).
        let delta = salt.saved_regs.len() + 3 - 1;
        assert_eq!(
            rewritten.iter().filter(|i| !i.is_label()).count(),
            salt.inst_count() - delta
        );
    }

    #[test]
    fn compressed_code_is_smaller_on_redundant_programs() {
        // Many similar functions: heavy prologue/epilogue idioms.
        let mut src = String::from("int id(int a, int b) { return a; }\n");
        for i in 0..24 {
            src.push_str(&format!(
                "int f{i}(int a, int b) {{
                     int s = a;
                     int j;
                     for (j = 0; j < b; j++) s += {prev}(s, j);
                     return s;
                 }}\n",
                prev = if i == 0 {
                    "id".to_string()
                } else {
                    format!("f{}", i - 1)
                },
            ));
        }
        src.push_str("int main() { return f3(1, 2); }");
        let p = vm_program(&src);
        let report = compress(&p, BriscOptions::default()).unwrap();
        assert!(
            report.image.code_size() < report.input_bytes,
            "compressed code {} should beat base encoding {}",
            report.image.code_size(),
            report.input_bytes,
        );
        assert!(
            report.dictionary_entries > report.base_entries,
            "patterns should be adopted"
        );
    }

    #[test]
    fn disabled_generators_produce_no_adoptions_of_their_kind() {
        let p = salty_program();
        let no_comb = BriscOptions {
            combination: false,
            ..BriscOptions::default()
        };
        let report = compress(&p, no_comb).unwrap();
        assert!(
            report.image.dictionary.iter().all(|e| e.len() == 1),
            "no combined entries when combination is off"
        );
        let no_spec = BriscOptions {
            specialization: false,
            x4: false,
            ..BriscOptions::default()
        };
        let report = compress(&p, no_spec).unwrap();
        for e in &report.image.dictionary {
            for pat in &e.patterns {
                assert!(
                    pat.fields
                        .iter()
                        .all(|f| matches!(f, PatternField::Wildcard(_))),
                    "no burned fields when specialization is off"
                );
            }
        }
    }

    #[test]
    fn candidate_counts_are_reported() {
        let report = compress(&salty_program(), BriscOptions::default()).unwrap();
        assert!(report.candidates_tested > 0);
    }

    #[test]
    fn order0_option_is_carried_into_the_image() {
        let report = compress(
            &salty_program(),
            BriscOptions {
                order0: true,
                ..BriscOptions::default()
            },
        )
        .unwrap();
        assert!(report.image.order0);
    }

    #[test]
    fn branch_targets_stay_item_aligned() {
        // A loop with a backward branch: the target must remain an item
        // start through all rewriting.
        let p = vm_program(
            "int main() { int s = 0; int i; for (i = 0; i < 50; i++) s += i * 3; return s; }",
        );
        let report = compress(&p, BriscOptions::default()).unwrap();
        // Round-trip the image to prove targets still decode.
        let bytes = report.image.to_bytes();
        let back = BriscImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, report.image);
    }
}
