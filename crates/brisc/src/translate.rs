//! The fast tier: translating BRISC back to executable form.
//!
//! "Alternately, we can compile BRISC at over 2.5 megabytes per second,
//! producing x86 machine code" (§1). [`translate`] performs the one
//! linear decode pass that reconstructs a [`VmProgram`] (byte-offset
//! branch targets become labels); [`emit_x86`] additionally produces the
//! x86-64 machine-code bytes whose output rate is the paper's
//! "MB/sec of produced code" metric.

use crate::image::BriscImage;
use crate::markov::BLOCK_START;
use crate::BriscError;
use codecomp_vm::isa::Inst;
use codecomp_vm::program::{VmFunction, VmGlobal, VmProgram};
use std::collections::BTreeSet;

/// Decodes a compressed image back into a VM program.
///
/// Branch targets (local byte offsets in the image) become labels whose
/// numbers *are* those byte offsets, so the translation is direct and
/// label allocation is free.
///
/// # Errors
///
/// [`BriscError::Corrupt`] on undecodable images.
pub fn translate(image: &BriscImage) -> Result<VmProgram, BriscError> {
    translate_budgeted(image, &codecomp_core::Budget::default())
}

/// Budget-governed [`translate`]: one fuel step is charged per decoded
/// item, so a caller can bound the translation work an untrusted image
/// can demand.
///
/// # Errors
///
/// As [`translate`], plus [`BriscError::Limit`] when `budget` trips.
pub fn translate_budgeted(
    image: &BriscImage,
    budget: &codecomp_core::Budget,
) -> Result<VmProgram, BriscError> {
    let mut program = VmProgram::new();
    program.globals = image
        .globals
        .iter()
        .map(|g| VmGlobal {
            name: g.name.clone(),
            size: g.size,
            init: g.init.clone(),
        })
        .collect();
    for (fi, f) in image.functions.iter().enumerate() {
        // Pass 1: linear decode, collecting instructions and the branch
        // targets that need labels.
        let mut decoded: Vec<(u32, Vec<Inst>)> = Vec::new();
        let mut targets: BTreeSet<u32> = BTreeSet::new();
        let mut pos = f.start as usize;
        let end = (f.start + f.len) as usize;
        let mut ctx = BLOCK_START;
        while pos < end {
            budget.charge_fuel(1)?;
            let local = (pos - f.start as usize) as u32;
            let effective = if image.is_extra_leader(fi, local) {
                BLOCK_START
            } else {
                ctx
            };
            let item = image.decode_at(pos, effective)?;
            for inst in &item.insts {
                match inst {
                    Inst::Branch { target, .. }
                    | Inst::BranchImm { target, .. }
                    | Inst::Jump { target } => {
                        targets.insert(*target);
                    }
                    _ => {}
                }
            }
            let last_ends = item.insts.last().is_some_and(Inst::ends_block);
            decoded.push((local, item.insts));
            ctx = if last_ends { BLOCK_START } else { item.entry };
            pos += item.size;
        }
        // Pass 2: emit with labels at target offsets.
        let mut vf = VmFunction::new(&f.name, f.param_count, f.frame_size);
        vf.saved_regs = f.saved_regs.clone();
        for (local, insts) in decoded {
            if targets.contains(&local) {
                vf.code.push(Inst::Label(local));
            }
            vf.code.extend(insts);
        }
        vf.validate()
            .map_err(|e| BriscError::Corrupt(e.to_string()))?;
        program.functions.push(vf);
    }
    program
        .validate()
        .map_err(|e| BriscError::Corrupt(e.to_string()))?;
    Ok(program)
}

/// Translates and emits x86-64 machine code; returns `(program, bytes)`.
///
/// # Errors
///
/// As [`translate`].
pub fn emit_x86(image: &BriscImage) -> Result<(VmProgram, Vec<u8>), BriscError> {
    let program = translate(image)?;
    let mut enc = codecomp_vm::native::X86Encoder::new();
    enc.emit_program(&program);
    Ok((program, enc.into_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress, BriscOptions};
    use codecomp_front::compile;
    use codecomp_vm::codegen::compile_module;
    use codecomp_vm::interp::Machine;
    use codecomp_vm::isa::IsaConfig;

    fn roundtrip_and_run(src: &str, args: &[i64]) {
        let ir = compile(src).unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let expect = Machine::new(&vm, 1 << 20, 1 << 26)
            .unwrap()
            .run("main", args)
            .unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let translated = translate(&report.image).unwrap();
        let got = Machine::new(&translated, 1 << 20, 1 << 26)
            .unwrap()
            .run("main", args)
            .unwrap();
        assert_eq!(got.value, expect.value);
        assert_eq!(got.output, expect.output);
    }

    #[test]
    fn translated_programs_run_identically() {
        roundtrip_and_run(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { print_int(fib(9)); return fib(10); }",
            &[],
        );
    }

    #[test]
    fn loops_and_arrays_translate() {
        roundtrip_and_run(
            "int a[10];
             int main() {
                 int i;
                 for (i = 0; i < 10; i++) a[i] = i * i;
                 int s = 0;
                 for (i = 0; i < 10; i++) s += a[i];
                 return s;
             }",
            &[],
        );
    }

    #[test]
    fn translation_expands_combined_items() {
        let ir = compile(
            "int f1(int a, int b) { return a + b; }
             int f2(int a, int b) { return f1(b, a) * 2; }
             int f3(int a, int b) { return f2(b, a) + f1(a, b); }
             int main() { return f3(1, 2); }",
        )
        .unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let translated = translate(&report.image).unwrap();
        // The instruction population must match the (epi-folded) input.
        let combined_entries = report
            .image
            .dictionary
            .iter()
            .filter(|e| e.len() > 1)
            .count();
        // Either combinations happened or the program was too small; in
        // both cases translation must reproduce a valid program.
        assert!(translated.validate().is_ok());
        let _ = combined_entries;
    }

    #[test]
    fn x86_emission_produces_bytes() {
        let ir =
            compile("int main() { int s = 0; int i; for (i = 0; i < 30; i++) s += i; return s; }")
                .unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let (program, bytes) = emit_x86(&report.image).unwrap();
        assert!(!bytes.is_empty());
        assert_eq!(bytes.len(), codecomp_vm::native::x86_size(&program));
        // The produced native code is larger than the compressed form —
        // that is the whole point of the representation.
        assert!(bytes.len() > report.image.code_size());
    }

    #[test]
    fn translate_after_serialization() {
        let ir = compile("int main() { return 41 + 1; }").unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = compress(&vm, BriscOptions::default()).unwrap();
        let image = crate::image::BriscImage::from_bytes(&report.image.to_bytes()).unwrap();
        let translated = translate(&image).unwrap();
        let got = Machine::new(&translated, 1 << 20, 1 << 24)
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(got.value, 42);
    }
}
