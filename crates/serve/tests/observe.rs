//! Observability suite for the soak harness: live metric streaming,
//! request-scoped tracing, and the span ↔ counter reconcile check.
//!
//! Everything runs on the soak's virtual clock, so the assertions here
//! are exact: same-seed runs must produce *byte-identical* metric
//! streams and span logs, and every `serve.*` counter must equal its
//! span population with no tolerance.

use std::sync::Arc;

use codecomp_core::telemetry::reconcile::{reconcile, SPAN_ATTEMPT, SPAN_CACHE, SPAN_REQUEST};
use codecomp_core::telemetry::stream::{validate_stream_line, MetricsStreamer};
use codecomp_core::telemetry::{LocalHistogram, Registry};
use codecomp_corpus::benchmarks;
use codecomp_ir::tree::Module;
use codecomp_serve::server::{ModuleServer, ServeError, ServerConfig};
use codecomp_serve::soak::{corrupt_units, run_soak, run_soak_observed, SoakConfig, SoakObserver};
use codecomp_serve::MILLI;
use codecomp_wire::demand::DemandImage;
use codecomp_wire::WireOptions;

fn corpus_image() -> DemandImage {
    let mut merged = Module::default();
    for b in benchmarks() {
        let module = b.compile().expect("corpus programs compile");
        for mut f in module.functions {
            f.name = format!("{}__{}", b.name, f.name);
            merged.functions.push(f);
        }
        for mut g in module.globals {
            g.name = format!("{}__{}", b.name, g.name);
            merged.globals.push(g);
        }
    }
    DemandImage::build(&merged, WireOptions::default()).expect("demand build")
}

fn faulty_cfg() -> SoakConfig {
    SoakConfig {
        seed: 0x0B5E_7E57,
        clients: 9,
        requests_per_client: 96,
        fault_num: 2,
        fault_den: 100,
        ..SoakConfig::default()
    }
}

#[test]
fn observed_soak_streams_deterministically_and_reconciles() {
    let image = corpus_image();
    let (broken, corrupted) = corrupt_units(&image, 2, 77);
    assert!(!corrupted.is_empty(), "corruption took hold");
    let cfg = faulty_cfg();

    let run = || {
        let mut obs = SoakObserver::new().with_metrics_interval(20 * MILLI).with_spans();
        let report = run_soak_observed(&broken, &cfg, &mut obs);
        (report, obs)
    };
    let (report, obs) = run();

    // The run exercises every span-emitting path we reconcile.
    assert!(report.survived());
    assert!(report.retries > 0 && report.source_corrupt > 0, "faults bit");
    assert!(report.cache_hits > 0 && report.cache_misses > 0);

    // Stream: non-empty, schema-valid line by line.
    assert!(obs.stream_lines.len() >= 2, "interval produced samples");
    for line in &obs.stream_lines {
        validate_stream_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    // The closing line carries the final totals, so the request
    // counter deltas across the stream sum to the report's total.
    let requests_streamed: u64 = obs
        .stream_lines
        .iter()
        .filter_map(|l| {
            let key = "\"serve.requests\":";
            let at = l.find(key)? + key.len();
            l[at..].split(&[',', '}'][..]).next()?.parse::<u64>().ok()
        })
        .sum();
    assert_eq!(requests_streamed, report.requests, "deltas sum to the total");

    // Spans: the log reconciles exactly against the counters, and each
    // request's tree is reconstructable.
    assert!(!obs.spans.is_empty());
    let snap = obs.final_snapshot(&report);
    let rec = reconcile(&obs.spans, &snap)
        .unwrap_or_else(|errs| panic!("reconcile failed:\n{}", errs.join("\n")));
    assert_eq!(rec.requests, report.requests);
    assert_eq!(rec.attempts, report.attempts);
    let tree = obs.spans.request_tree(0);
    assert!(!tree.is_empty(), "request 0 left a span tree");
    assert_eq!(tree[0].name, SPAN_REQUEST, "tree is rooted at the request span");
    assert!(tree.iter().skip(1).all(|s| s.name != SPAN_REQUEST));

    // Determinism: same seed → byte-identical stream AND span log.
    let (report2, obs2) = run();
    assert_eq!(report, report2);
    assert_eq!(obs.stream_lines, obs2.stream_lines, "metric stream is bit-deterministic");
    assert_eq!(obs.spans, obs2.spans, "span log is bit-deterministic");

    // The observer is pay-for-what-you-use: the plain run is
    // unaffected by observation (same report), and a bare observer
    // records nothing.
    let plain = run_soak(&broken, &cfg);
    assert_eq!(plain, report, "observation does not perturb the simulation");
    let mut bare = SoakObserver::new();
    let _ = run_soak_observed(&broken, &cfg, &mut bare);
    assert!(bare.stream_lines.is_empty() && bare.spans.is_empty());
}

#[test]
fn overloaded_soak_reconciles_shed_and_breaker_waits() {
    let image = corpus_image();
    let cfg = SoakConfig {
        seed: 0x5AED,
        clients: 24,
        requests_per_client: 40,
        fault_num: 0,
        fault_den: 100,
        think_time: 1,
        workers: 1,
        max_queue_wait: MILLI,
        decode_rate: 100_000.0,
        ..SoakConfig::default()
    };
    let mut obs = SoakObserver::new().with_spans();
    let report = run_soak_observed(&image, &cfg, &mut obs);
    assert!(report.sheds > 0, "overload must shed");
    let snap = obs.final_snapshot(&report);
    reconcile(&obs.spans, &snap)
        .unwrap_or_else(|errs| panic!("reconcile failed:\n{}", errs.join("\n")));
    // Sheds are waits, not attempts: the attempt population must not
    // contain them.
    assert_eq!(obs.spans.count(SPAN_ATTEMPT), report.attempts);
    assert!(obs.spans.count_outcome(SPAN_CACHE, "hit") == report.cache_hits);
}

/// Satellite: the registry's atomics must lose nothing under real
/// thread contention. N threads hammer shared counters + a histogram
/// (while also driving the thread-safe server for realistic
/// interleaving) and keep private sums; the registry totals must equal
/// the per-thread sums exactly.
#[test]
fn concurrent_registry_hammer_reconciles_with_per_thread_sums() {
    let image = corpus_image();
    let names: Vec<String> = image.names().map(str::to_string).collect();
    let server = Arc::new(ModuleServer::new(image, ServerConfig::default()));
    let registry = Arc::new(Registry::new());

    const THREADS: u64 = 8;
    const ITERS: u64 = 500;
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let server = Arc::clone(&server);
            let registry = Arc::clone(&registry);
            let names = names.clone();
            std::thread::spawn(move || {
                let mut local_count = 0u64;
                let mut local_sum = 0u64;
                let mut local_hist = LocalHistogram::default();
                for i in 0..ITERS {
                    let name = &names[((tid * 31 + i) as usize) % names.len()];
                    let bytes = match server.request(tid, name) {
                        Ok(resp) => resp.bytes.len() as u64,
                        Err(ServeError::Shed { .. }) => 0,
                        Err(e) => panic!("unexpected verdict {e:?}"),
                    };
                    registry.counter("hammer.requests").add(1);
                    registry.counter("hammer.bytes").add(bytes);
                    registry.histogram("hammer.unit_bytes").record(bytes);
                    local_hist.record(bytes);
                    local_count += 1;
                    local_sum += bytes;
                }
                // Batched merge path under contention too.
                registry.histogram("hammer.unit_bytes.batched").merge(&local_hist);
                (local_count, local_sum)
            })
        })
        .collect();

    let mut expect_count = 0u64;
    let mut expect_sum = 0u64;
    for h in handles {
        let (c, s) = h.join().expect("no panics under contention");
        expect_count += c;
        expect_sum += s;
    }
    assert_eq!(expect_count, THREADS * ITERS);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer.requests"), Some(expect_count));
    assert_eq!(snap.counter("hammer.bytes"), Some(expect_sum));
    let h = snap.histogram("hammer.unit_bytes").expect("histogram exists");
    assert_eq!(h.count, expect_count, "no lost histogram records");
    assert_eq!(h.sum, expect_sum, "no lost histogram sum");
    let hb = snap.histogram("hammer.unit_bytes.batched").expect("batched histogram");
    assert_eq!((hb.count, hb.sum), (h.count, h.sum), "merge path agrees with record path");
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        expect_count,
        "bucket populations account for every record"
    );

    // A streamer over the contended registry still emits a valid line.
    let mut streamer = MetricsStreamer::new();
    let line = streamer.sample(0, &snap);
    validate_stream_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
}
