//! Soak + robustness suite for the demand-paging module server.
//!
//! Everything here is virtual-time and seed-deterministic: the big
//! soak drives ≥10,000 simulated requests across the paper's three
//! channel models at a 1% injected fault rate and must deliver every
//! non-source-corrupt function with zero panics, bounded per-request
//! attempts, bounded cache memory, and a bit-identical report on a
//! same-seed re-run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use codecomp_corpus::benchmarks;
use codecomp_ir::tree::Module;
use codecomp_serve::breaker::{BreakerPolicy, BreakerState};
use codecomp_serve::channel::{DeliveryOutcome, FaultyChannel, Transport};
use codecomp_serve::client::{ClientConfig, FetchClient, WireEvent};
use codecomp_serve::retry::RetryPolicy;
use codecomp_serve::server::{ModuleServer, ServeError, ServerConfig};
use codecomp_serve::soak::{corrupt_units, run_soak, ChannelKind, SoakConfig};
use codecomp_serve::{MILLI, SECOND};
use codecomp_wire::demand::DemandImage;
use codecomp_wire::WireOptions;
use codecomp_memsim::Channel;

/// One module merging every corpus benchmark (names prefixed to stay
/// unique), so the image serves a few dozen distinct functions.
fn merged_corpus_module() -> Module {
    let mut merged = Module::default();
    for b in benchmarks() {
        let module = b.compile().expect("corpus programs compile");
        for mut f in module.functions {
            f.name = format!("{}__{}", b.name, f.name);
            merged.functions.push(f);
        }
        for mut g in module.globals {
            g.name = format!("{}__{}", b.name, g.name);
            merged.globals.push(g);
        }
    }
    merged
}

fn corpus_image() -> DemandImage {
    DemandImage::build(&merged_corpus_module(), WireOptions::default()).expect("demand build")
}

#[test]
fn soak_ten_thousand_requests_survives_and_repeats_exactly() {
    let image = corpus_image();
    let cfg = SoakConfig {
        seed: 0xC0DE_0001,
        clients: 15,
        requests_per_client: 700, // 10,500 requests ≥ the 10k bar
        fault_num: 1,
        fault_den: 100,
        ..SoakConfig::default()
    };
    assert!(cfg.channels.len() == 3, "all three paper channels in play");

    let report = run_soak(&image, &cfg);
    assert_eq!(report.requests, 10_500);
    assert_eq!(report.stuck_clients, 0, "no stuck requests");
    assert_eq!(
        report.undelivered,
        Vec::<String>::new(),
        "every non-source-corrupt function eventually delivered"
    );
    assert!(report.survived());
    let unit_count = image.names().count() as u64;
    assert_eq!(report.names_requested, unit_count, "workload covers every function");
    assert_eq!(report.names_delivered, unit_count, "every function delivered somewhere");
    assert!(report.delivered > 0 && report.delivered <= report.requests);
    assert_eq!(report.source_corrupt, 0, "pristine image has no source corruption");
    assert!(
        report.max_attempts_seen <= cfg.client.retry.max_attempts,
        "per-request retries bounded by policy: {} > {}",
        report.max_attempts_seen,
        cfg.client.retry.max_attempts
    );
    assert!(
        report.peak_cache_bytes <= cfg.server.max_cache_bytes,
        "cache memory bounded: {} > {}",
        report.peak_cache_bytes,
        cfg.server.max_cache_bytes
    );
    // 1% faults on ~10k attempts: faults must actually bite, and the
    // retry machinery must absorb them.
    assert!(report.retries > 0, "faults provoked retries");
    assert!(
        report.timeouts + report.corrupt_deliveries > 0,
        "injected faults were observed"
    );
    assert_eq!(
        report.requests,
        report.delivered + report.failed,
        "every request ends delivered or failed"
    );
    assert!(report.attempts >= report.requests, "each request costs ≥1 attempt");

    // Same seed → identical report, field for field (this is also the
    // telemetry-counter determinism gate: counter_totals derives from
    // the report).
    let again = run_soak(&image, &cfg);
    assert_eq!(report, again, "same-seed soak must be bit-identical");
    assert_eq!(report.counter_totals(), again.counter_totals());

    // Different seed → a genuinely different run (sanity that the seed
    // actually feeds the machinery).
    let other = run_soak(&image, &SoakConfig { seed: 0xC0DE_0002, ..cfg });
    assert_ne!(report.virtual_duration, other.virtual_duration);
}

#[test]
fn soak_with_source_corrupt_units_flags_them_and_delivers_the_rest() {
    let image = corpus_image();
    let (broken, corrupted) = corrupt_units(&image, 2, 77);
    assert!(!corrupted.is_empty(), "corruption took hold");

    let cfg = SoakConfig {
        seed: 0xBAD_5EED,
        clients: 9,
        // ~4 laps over the name list per client: a source-corrupt unit
        // accumulates enough consecutive failures to trip its breaker.
        requests_per_client: 256,
        fault_num: 1,
        fault_den: 100,
        ..SoakConfig::default()
    };
    let report = run_soak(&broken, &cfg);
    assert_eq!(report.stuck_clients, 0);
    assert!(report.source_corrupt > 0, "server verdicts reached clients");
    for name in &report.permanently_corrupt {
        assert!(corrupted.contains(name), "{name} flagged but not injected");
    }
    assert!(
        report.undelivered.is_empty(),
        "all healthy functions delivered; undelivered = {:?}",
        report.undelivered
    );
    assert!(
        report.breaker_opens > 0,
        "permanent corruption must trip breakers"
    );
}

#[test]
fn soak_sheds_under_overload_and_still_survives() {
    let image = corpus_image();
    let cfg = SoakConfig {
        seed: 0x5AED,
        clients: 24,
        requests_per_client: 40,
        fault_num: 0, // isolate shedding from channel faults
        fault_den: 100,
        think_time: 1, // hammer arrivals
        workers: 1,
        max_queue_wait: 1 * MILLI,
        decode_rate: 100_000.0, // slow virtual decoder
        ..SoakConfig::default()
    };
    let report = run_soak(&image, &cfg);
    assert!(report.sheds > 0, "overload must shed");
    assert_eq!(report.stuck_clients, 0, "shed requests are not stuck requests");
    assert!(
        report.undelivered.is_empty(),
        "load shedding may delay but not starve: {:?}",
        report.undelivered
    );
}

/// Satellite: a transiently faulty unit fails twice, then succeeds —
/// it must leave quarantine and the breaker must pass through
/// half-open, deterministically by seed.
#[test]
fn transient_fault_recovery_leaves_quarantine_and_half_opens_breaker() {
    let image = corpus_image();
    let name = image.names().next().expect("image has units").to_string();
    let unit = image.unit_bytes(&name).expect("unit bytes").to_vec();

    // Find a seed whose channel corrupts attempts 1 and 2 of request 0
    // and delivers attempt 3 clean. The search is deterministic, so
    // the chosen seed — and everything after it — replays exactly.
    let seed = (1u64..)
        .find(|&s| {
            let ch = FaultyChannel::new(Channel::lan_10mbit(), s, 1, 2);
            let fate = |attempt| {
                let d = ch.deliver(0, attempt, &unit);
                match d.outcome {
                    DeliveryOutcome::Delivered(bytes) => {
                        if bytes == unit {
                            Some(true) // clean
                        } else {
                            Some(false) // corrupted
                        }
                    }
                    DeliveryOutcome::TimedOut => None,
                }
            };
            fate(1) == Some(false) && fate(2) == Some(false) && fate(3) == Some(true)
        })
        .expect("a flaky seed exists");
    let channel = FaultyChannel::new(Channel::lan_10mbit(), seed, 1, 2);

    let cfg = ClientConfig {
        breaker: BreakerPolicy {
            failure_threshold: 2,
            cooldown: 50 * MILLI,
            escalation: 4,
            max_cooldown: 10 * SECOND,
        },
        retry: RetryPolicy::default(),
        ..ClientConfig::default()
    };
    let mut client = FetchClient::new(1, cfg, 42);

    let mut now = 0;
    // Attempts 1 and 2: corrupted deliveries — quarantine + breaker
    // trips open at the threshold.
    for attempt in 1..=2u32 {
        client.pre_admit(now, &name).expect("breaker closed");
        let d = channel.deliver(0, attempt, &unit);
        let DeliveryOutcome::Delivered(bytes) = &d.outcome else {
            panic!("seed guarantees delivery")
        };
        now += d.elapsed;
        let err = client
            .on_attempt(now, &name, WireEvent::Delivered { bytes, verified: true })
            .expect_err("corrupted delivery fails decode");
        assert!(!err.is_permanent());
    }
    assert!(client.quarantined(&name).is_some(), "unit quarantined after failures");
    assert_eq!(client.breaker_state(&name), BreakerState::Open);

    // While open: attempts are refused.
    let refused = client.pre_admit(now, &name);
    assert!(refused.is_err(), "open breaker refuses attempts");

    // After the cooldown: the probe is admitted half-open.
    now += 50 * MILLI;
    client.pre_admit(now, &name).expect("cooldown elapsed admits the probe");
    assert_eq!(
        client.breaker_state(&name),
        BreakerState::HalfOpen,
        "probe runs half-open"
    );

    // Attempt 3: clean delivery — quarantine clears, breaker closes.
    let d = channel.deliver(0, 3, &unit);
    let DeliveryOutcome::Delivered(bytes) = &d.outcome else {
        panic!("seed guarantees clean delivery")
    };
    now += d.elapsed;
    let f = client
        .on_attempt(now, &name, WireEvent::Delivered { bytes, verified: true })
        .expect("clean delivery decodes");
    assert_eq!(f.name, name);
    assert_eq!(client.quarantined(&name), None, "recovery leaves quarantine");
    assert_eq!(client.breaker_state(&name), BreakerState::Closed);
    let (opens, half_opens, recoveries, _) = client.breaker_totals();
    assert_eq!((opens, half_opens, recoveries), (1, 1, 1));
    assert_eq!(client.stats().recoveries, 1);
}

#[test]
fn module_server_is_send_sync_and_sheds_under_real_concurrency() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ModuleServer>();
    assert_send_sync::<DemandImage>();

    let image = corpus_image();
    let names: Vec<String> = image.names().map(str::to_string).collect();
    let server = Arc::new(ModuleServer::new(
        image,
        ServerConfig {
            max_in_flight: 2, // tiny: force real admission sheds
            ..ServerConfig::default()
        },
    ));

    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..8u64)
        .map(|tid| {
            let server = Arc::clone(&server);
            let names = names.clone();
            let served = Arc::clone(&served);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                for i in 0..200usize {
                    let name = &names[(i + tid as usize * 7) % names.len()];
                    match server.request(tid, name) {
                        Ok(resp) => {
                            assert!(!resp.bytes.is_empty());
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Shed { retry_after }) => {
                            assert!(retry_after > 0, "shed carries a retry-after hint");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected verdict {e:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no panics under concurrency");
    }

    let stats = server.stats();
    assert_eq!(stats.requests, 8 * 200);
    assert_eq!(
        served.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
        8 * 200,
        "every request got exactly one verdict"
    );
    assert_eq!(stats.shed, shed.load(Ordering::Relaxed));
    assert_eq!(stats.verify_fails, 0, "pristine image never fails verification");
}

#[test]
fn server_degrades_to_raw_bytes_under_memory_pressure() {
    let image = corpus_image();
    let names: Vec<String> = image.names().map(str::to_string).collect();

    // Zero cache: every response is raw (unverified), nothing cached.
    let raw_only = ModuleServer::new(image.clone(), ServerConfig {
        max_cache_bytes: 0,
        ..ServerConfig::default()
    });
    for name in &names {
        let resp = raw_only.request(0, name).expect("serves raw");
        assert!(!resp.verified, "{name} must be served raw at zero cache");
        assert!(!resp.cache_hit);
    }
    let s = raw_only.stats();
    assert_eq!(s.raw_fallbacks, names.len() as u64);
    assert_eq!(s.verify_decodes, 0, "raw fallback skips the decode");
    assert_eq!(raw_only.cache_bytes(), 0);

    // Tiny cache, one shard: verification still happens but eviction
    // sweeps keep residency bounded.
    let tiny = ModuleServer::new(image.clone(), ServerConfig {
        max_cache_bytes: 4_096,
        shards: 1,
        ..ServerConfig::default()
    });
    for _ in 0..3 {
        for name in &names {
            let _ = tiny.request(0, name).expect("serves");
        }
    }
    let st = tiny.stats();
    assert!(
        st.evictions > 0 || st.uncacheable > 0,
        "tiny cache must evict or refuse residency"
    );
    assert!(tiny.cache_bytes() <= 4_096, "cache stays within its bound");
    assert!(st.peak_cache_bytes <= 4_096, "peak never exceeds the cap");

    // Healthy cache: second pass is all verified hits.
    let healthy = ModuleServer::new(image, ServerConfig::default());
    for name in &names {
        let _ = healthy.request(0, name).expect("first pass");
    }
    for name in &names {
        let resp = healthy.request(0, name).expect("second pass");
        assert!(resp.verified && resp.cache_hit, "{name} should be a verified hit");
        assert!(healthy.cached_function(name).is_some());
    }
}
