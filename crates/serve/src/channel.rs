//! Fault-injecting byte transport over `memsim` channel models.
//!
//! A [`FaultyChannel`] delivers a payload with the transfer time the
//! paper's channel models predict (bandwidth + latency), then rolls a
//! seeded PRNG for an injected fault. The PRNG is keyed on
//! `(seed, request_id, attempt)` so every attempt of every request has
//! an independent — but fully reproducible — fate: a corrupted first
//! attempt can be followed by a clean retry, which is exactly the
//! transient-fault story the client's quarantine recovery needs.

use codecomp_core::fault::{Mutation, XorShift64};
use codecomp_core::telemetry;
use codecomp_memsim::Channel;

use crate::{secs_to_nanos, Nanos, SECOND};

/// What the channel did to one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// Payload cut short mid-transfer.
    Truncate,
    /// Payload bits corrupted in flight.
    Corrupt,
    /// Payload intact but delivered late (congestion).
    Delay,
    /// Nothing arrived before the attempt cutoff.
    Timeout,
}

impl ChannelFault {
    /// Stable name for telemetry fields.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChannelFault::Truncate => "truncate",
            ChannelFault::Corrupt => "corrupt",
            ChannelFault::Delay => "delay",
            ChannelFault::Timeout => "timeout",
        }
    }
}

/// Outcome of one delivery attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Bytes arrived (possibly corrupted — the client's decoder is the
    /// integrity check).
    Delivered(Vec<u8>),
    /// The attempt cutoff elapsed with nothing delivered.
    TimedOut,
}

/// One delivery attempt's result: what arrived and how long it took in
/// virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Virtual time the attempt consumed.
    pub elapsed: Nanos,
    /// What arrived.
    pub outcome: DeliveryOutcome,
    /// The injected fault, if any.
    pub fault: Option<ChannelFault>,
}

/// Byte transport abstraction so tests can script exact fault
/// sequences against the client without probability.
pub trait Transport {
    /// Delivers `payload` for `(request_id, attempt)`, returning what
    /// arrived and the virtual time spent.
    fn deliver(&self, request_id: u64, attempt: u32, payload: &[u8]) -> Delivery;
}

/// A `memsim`-modeled channel with seeded deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultyChannel {
    /// Bandwidth/latency model the transfer time comes from.
    pub model: Channel,
    /// Base seed; combined with request id and attempt number.
    pub seed: u64,
    /// Fault probability numerator (`fault_num / fault_den` of
    /// attempts are faulted; 0 disables injection).
    pub fault_num: u64,
    /// Fault probability denominator.
    pub fault_den: u64,
    /// Attempt cutoff: a timeout fault consumes exactly this long.
    pub timeout: Nanos,
}

impl FaultyChannel {
    /// A channel over `model` faulting `fault_num / fault_den` of
    /// attempts. The attempt cutoff defaults to the larger of one
    /// virtual second and 64× the model's latency.
    #[must_use]
    pub fn new(model: Channel, seed: u64, fault_num: u64, fault_den: u64) -> FaultyChannel {
        let timeout = secs_to_nanos(model.latency).saturating_mul(64).max(SECOND);
        FaultyChannel { model, seed, fault_num, fault_den: fault_den.max(1), timeout }
    }

    /// Same channel with an explicit attempt cutoff.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Nanos) -> FaultyChannel {
        self.timeout = timeout.max(1);
        self
    }

    /// Fault-free transfer time for `bytes` under the model.
    #[must_use]
    pub fn transfer_nanos(&self, bytes: usize) -> Nanos {
        secs_to_nanos(self.model.transfer_time(bytes))
    }

    fn rng_for(&self, request_id: u64, attempt: u32) -> XorShift64 {
        // Distinct odd multipliers decorrelate the three key parts;
        // the constant keeps seed 0 usable.
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(request_id.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x94d0_49bb_1331_11eb))
            | 1;
        XorShift64::new(key)
    }
}

impl Transport for FaultyChannel {
    fn deliver(&self, request_id: u64, attempt: u32, payload: &[u8]) -> Delivery {
        let base = self.transfer_nanos(payload.len());
        let mut rng = self.rng_for(request_id, attempt);
        if !rng.chance(self.fault_num, self.fault_den) {
            return Delivery {
                elapsed: base,
                outcome: DeliveryOutcome::Delivered(payload.to_vec()),
                fault: None,
            };
        }
        let fault = match rng.below(4) {
            0 => ChannelFault::Truncate,
            1 => ChannelFault::Corrupt,
            2 => ChannelFault::Delay,
            _ => ChannelFault::Timeout,
        };
        telemetry::counter_add("serve.channel.faults", 1);
        match fault {
            ChannelFault::Truncate => {
                // Cut mid-transfer: proportionally less wire time.
                let keep = (rng.below(payload.len() as u64 + 1)) as usize;
                let frac = if payload.is_empty() {
                    base
                } else {
                    // keep/len of the payload crossed the wire.
                    ((base as u128 * keep as u128 / payload.len() as u128) as u64).max(1)
                };
                let bytes = Mutation::Truncate { len: keep }.apply(payload);
                Delivery {
                    elapsed: frac,
                    outcome: DeliveryOutcome::Delivered(bytes),
                    fault: Some(fault),
                }
            }
            ChannelFault::Corrupt => {
                // One to four bit flips or a short splice.
                let mut bytes = payload.to_vec();
                if bytes.is_empty() {
                    // Nothing to corrupt; degrade to a truncation-of-nothing.
                } else if rng.chance(1, 4) {
                    let offset = rng.below(bytes.len() as u64) as usize;
                    let len = rng.range_usize(1, bytes.len().min(8) + 1);
                    bytes = Mutation::Splice { offset, len, seed: rng.next_u64() }.apply(&bytes);
                } else {
                    for _ in 0..rng.range_usize(1, 5) {
                        let offset = rng.below(bytes.len() as u64) as usize;
                        let bit = (rng.below(8)) as u8;
                        bytes = Mutation::BitFlip { offset, bit }.apply(&bytes);
                    }
                }
                Delivery {
                    elapsed: base,
                    outcome: DeliveryOutcome::Delivered(bytes),
                    fault: Some(fault),
                }
            }
            ChannelFault::Delay => {
                // Congestion: 2–8× the modeled transfer time, capped at
                // the attempt cutoff (a delay past the cutoff *is* a
                // timeout from the client's seat).
                let factor = 2 + rng.below(7);
                let late = base.saturating_mul(factor);
                if late >= self.timeout {
                    Delivery {
                        elapsed: self.timeout,
                        outcome: DeliveryOutcome::TimedOut,
                        fault: Some(ChannelFault::Timeout),
                    }
                } else {
                    Delivery {
                        elapsed: late,
                        outcome: DeliveryOutcome::Delivered(payload.to_vec()),
                        fault: Some(fault),
                    }
                }
            }
            ChannelFault::Timeout => Delivery {
                elapsed: self.timeout,
                outcome: DeliveryOutcome::TimedOut,
                fault: Some(fault),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> FaultyChannel {
        FaultyChannel::new(Channel::lan_10mbit(), 99, 1, 2)
    }

    #[test]
    fn fault_free_channel_is_identity_with_model_timing() {
        let c = FaultyChannel::new(Channel::modem_28k8(), 1, 0, 100);
        let payload = vec![0xAB; 3_600];
        let d = c.deliver(7, 1, &payload);
        assert_eq!(d.outcome, DeliveryOutcome::Delivered(payload));
        assert_eq!(d.fault, None);
        // 3600 B at 3600 B/s + 0.1 s latency = 1.1 virtual seconds.
        assert_eq!(d.elapsed, secs_to_nanos(1.1));
    }

    #[test]
    fn deliveries_are_deterministic_per_request_and_attempt() {
        let c = chan();
        let payload: Vec<u8> = (0..=255).collect();
        for req in 0..50u64 {
            for attempt in 1..=3u32 {
                assert_eq!(
                    c.deliver(req, attempt, &payload),
                    c.deliver(req, attempt, &payload),
                    "replay must be bit-identical"
                );
            }
        }
        // Different attempts of the same request get independent fates.
        let fates: Vec<_> = (1..=16).map(|a| c.deliver(3, a, &payload).fault).collect();
        assert!(fates.iter().any(Option::is_some), "some attempts faulted");
        assert!(fates.iter().any(Option::is_none), "some attempts clean");
    }

    #[test]
    fn fault_rate_is_roughly_honored() {
        let c = FaultyChannel::new(Channel::disk(), 5, 1, 100);
        let payload = vec![1u8; 64];
        let faults = (0..2_000u64)
            .filter(|&r| c.deliver(r, 1, &payload).fault.is_some())
            .count();
        // 1% nominal; allow generous slack for PRNG variance.
        assert!((5..=60).contains(&faults), "unexpected fault count {faults}");
    }

    #[test]
    fn empty_payload_never_panics() {
        let c = FaultyChannel::new(Channel::lan_10mbit(), 17, 1, 1);
        for req in 0..64 {
            let d = c.deliver(req, 1, &[]);
            assert!(d.elapsed > 0 || matches!(d.outcome, DeliveryOutcome::Delivered(_)));
        }
    }

    #[test]
    fn timeout_consumes_exactly_the_cutoff() {
        let c = FaultyChannel::new(Channel::lan_10mbit(), 23, 1, 1).with_timeout(500);
        let payload = vec![9u8; 1 << 16];
        let mut saw_timeout = false;
        for req in 0..200 {
            let d = c.deliver(req, 1, &payload);
            if d.outcome == DeliveryOutcome::TimedOut {
                assert_eq!(d.elapsed, 500);
                saw_timeout = true;
            }
        }
        assert!(saw_timeout, "always-fault channel never timed out in 200 tries");
    }
}
