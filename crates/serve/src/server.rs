//! Thread-safe demand-paging function server.
//!
//! [`ModuleServer`] serves compressed function units out of a
//! [`DemandImage`]. Every served unit is *verified* when capacity
//! allows — decoded server-side into a tree cached in a sharded,
//! generation-stamped cache (the `DescCache` eviction discipline:
//! per-shard mutex, evict-oldest-half sweeps, failed builds never
//! cached) — and the verdicts degrade gracefully:
//!
//! - cache hit → serve bytes, already verified;
//! - cache miss with headroom → verify-decode under the requesting
//!   client's [`Budget`], cache the tree, serve verified bytes;
//! - memory pressure (unit too big for a shard, or the client's budget
//!   trips) → skip verification and serve **raw compressed bytes** for
//!   client-side decode;
//! - verify decode fails structurally → the unit is corrupt at the
//!   source: an explicit [`ServeError::Corrupt`] verdict so clients
//!   stop retrying;
//! - admission saturated → **shed** with an explicit retry-after hint
//!   instead of queueing unboundedly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use codecomp_core::limits::{Budget, DecodeLimits};
use codecomp_core::telemetry;
use codecomp_ir::tree::Function;
use codecomp_wire::demand::DemandImage;
use codecomp_wire::WireError;

use crate::{Nanos, MILLI};

/// Rough decoded-size multiplier over compressed unit bytes, used to
/// predict whether a unit can fit a shard before paying the decode.
const EXPANSION_ESTIMATE: u64 = 8;

/// Approximate resident bytes per decoded tree node.
const NODE_COST: u64 = 48;

/// Tunables for [`ModuleServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cache shard count (each behind its own mutex).
    pub shards: usize,
    /// Decoded-tree cache ceiling in (approximate) bytes, across all
    /// shards. 0 disables verification caching entirely: every request
    /// is served raw.
    pub max_cache_bytes: u64,
    /// Concurrent requests admitted before shedding.
    pub max_in_flight: usize,
    /// Retry-after hint attached to shed verdicts.
    pub shed_retry_after: Nanos,
    /// Basis for per-client verify budgets.
    pub limits: DecodeLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 8,
            max_cache_bytes: 8 << 20,
            max_in_flight: 64,
            shed_retry_after: 10 * MILLI,
            limits: DecodeLimits::default(),
        }
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission saturated; retry after the hinted virtual delay.
    Shed {
        /// Suggested wait before retrying.
        retry_after: Nanos,
    },
    /// No unit of that name in the image.
    UnknownFunction,
    /// Server-side verification failed: the unit is corrupt **at the
    /// source**, so retrying cannot help.
    Corrupt {
        /// Decode error description.
        what: String,
    },
}

/// A served unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The compressed unit bytes (the client decodes these locally —
    /// the server never ships decoded trees).
    pub bytes: Vec<u8>,
    /// Whether the server verified the unit decodes cleanly. `false`
    /// means raw fallback: the client must treat decode failure as a
    /// possibly-transient channel fault, not a source verdict.
    pub verified: bool,
    /// Whether verification was answered from the cache.
    pub cache_hit: bool,
}

/// Point-in-time server statistics (plain totals since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests received (before admission).
    pub requests: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Verification cache hits.
    pub cache_hits: u64,
    /// Verification cache misses.
    pub cache_misses: u64,
    /// Entries evicted by sweeps.
    pub evictions: u64,
    /// Requests served raw under memory/budget pressure.
    pub raw_fallbacks: u64,
    /// Verify decodes that failed structurally (source corruption).
    pub verify_fails: u64,
    /// Verify decodes performed.
    pub verify_decodes: u64,
    /// Verified units too costly for their shard to cache (served
    /// verified, not resident).
    pub uncacheable: u64,
    /// Peak approximate cached bytes across all shards.
    pub peak_cache_bytes: u64,
}

struct Entry {
    stamp: u64,
    cost: u64,
    function: Arc<Function>,
}

#[derive(Default)]
struct Shard {
    entries: BTreeMap<String, Entry>,
    clock: u64,
    bytes: u64,
}

impl Shard {
    /// DescCache discipline: drop the oldest half by stamp.
    fn evict_oldest_half(&mut self) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let mut stamps: Vec<u64> = self.entries.values().map(|e| e.stamp).collect();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        let doomed: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.stamp < cutoff.max(1))
            .map(|(k, _)| k.clone())
            .collect();
        // Always evict at least one entry so a single oversized
        // resident can't wedge the sweep.
        let doomed = if doomed.is_empty() {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            oldest.into_iter().collect()
        } else {
            doomed
        };
        let mut evicted = 0;
        for name in doomed {
            if let Some(e) = self.entries.remove(&name) {
                self.bytes = self.bytes.saturating_sub(e.cost);
                evicted += 1;
            }
        }
        evicted
    }
}

struct Counters {
    requests: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
    raw_fallbacks: AtomicU64,
    verify_fails: AtomicU64,
    verify_decodes: AtomicU64,
    uncacheable: AtomicU64,
    peak_cache_bytes: AtomicU64,
}

impl Counters {
    const fn new() -> Counters {
        Counters {
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            raw_fallbacks: AtomicU64::new(0),
            verify_fails: AtomicU64::new(0),
            verify_decodes: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            peak_cache_bytes: AtomicU64::new(0),
        }
    }
}

/// Thread-safe demand-paging server over one [`DemandImage`].
pub struct ModuleServer {
    image: DemandImage,
    cfg: ServerConfig,
    shards: Vec<Mutex<Shard>>,
    in_flight: AtomicUsize,
    clients: Mutex<BTreeMap<u64, Budget>>,
    stats: Counters,
}

/// RAII admission slot; dropping it releases the in-flight count.
pub struct AdmitGuard<'a> {
    server: &'a ModuleServer,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.server.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ModuleServer {
    /// A server over `image` under `cfg`.
    #[must_use]
    pub fn new(image: DemandImage, cfg: ServerConfig) -> ModuleServer {
        let shards = cfg.shards.max(1);
        ModuleServer {
            image,
            cfg,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            in_flight: AtomicUsize::new(0),
            clients: Mutex::new(BTreeMap::new()),
            stats: Counters::new(),
        }
    }

    /// The image being served.
    #[must_use]
    pub fn image(&self) -> &DemandImage {
        &self.image
    }

    /// Tries to take an admission slot; `None` means the caller should
    /// shed.
    fn try_admit(&self) -> Option<AdmitGuard<'_>> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cfg.max_in_flight.max(1) {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(AdmitGuard { server: self })
    }

    fn shard_budget(&self) -> u64 {
        self.cfg.max_cache_bytes / self.shards.len() as u64
    }

    fn shard_of(&self, name: &str) -> usize {
        // FNV-1a; stable across runs for deterministic shard layout.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[i].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared [`Budget`] verifying decodes on behalf of `client`.
    /// Created on first use from the configured limits, so one
    /// client's expensive traffic trips *its* meters, not its
    /// neighbors'.
    pub fn client_budget(&self, client: u64) -> Budget {
        self.clients
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(client)
            .or_insert_with(|| Budget::new(self.cfg.limits))
            .clone()
    }

    /// Whether `name` is currently verified in the cache (cheap peek;
    /// does not touch recency).
    #[must_use]
    pub fn is_cached(&self, name: &str) -> bool {
        self.lock_shard(self.shard_of(name)).entries.contains_key(name)
    }

    /// The cached decoded tree for `name`, if verification cached one.
    #[must_use]
    pub fn cached_function(&self, name: &str) -> Option<Arc<Function>> {
        self.lock_shard(self.shard_of(name))
            .entries
            .get(name)
            .map(|e| Arc::clone(&e.function))
    }

    /// Serves one function unit for `client`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shed`] at admission saturation,
    /// [`ServeError::UnknownFunction`] for names not in the image, and
    /// [`ServeError::Corrupt`] when server-side verification proves
    /// the unit undecodable at the source.
    pub fn request(&self, client: u64, name: &str) -> Result<ServeResponse, ServeError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let Some(_slot) = self.try_admit() else {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed { retry_after: self.cfg.shed_retry_after });
        };
        let Some(bytes) = self.image.unit_bytes(name) else {
            return Err(ServeError::UnknownFunction);
        };

        let shard_i = self.shard_of(name);
        {
            let mut shard = self.lock_shard(shard_i);
            shard.clock += 1;
            let clock = shard.clock;
            if let Some(e) = shard.entries.get_mut(name) {
                e.stamp = clock;
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(ServeResponse { bytes: bytes.to_vec(), verified: true, cache_hit: true });
            }
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Memory pressure check before paying the decode: an entry that
        // could never fit is served raw.
        let shard_budget = self.shard_budget();
        let estimate = (bytes.len() as u64).saturating_mul(EXPANSION_ESTIMATE);
        if shard_budget == 0 || estimate > shard_budget {
            self.stats.raw_fallbacks.fetch_add(1, Ordering::Relaxed);
            return Ok(ServeResponse { bytes: bytes.to_vec(), verified: false, cache_hit: false });
        }

        // Verify decode under the requesting client's budget. The lock
        // is *not* held across the decode; concurrent misses on the
        // same unit may both decode (harmless — last insert wins).
        let budget = self.client_budget(client);
        self.stats.verify_decodes.fetch_add(1, Ordering::Relaxed);
        match self.image.load_function_budgeted(name, &budget) {
            Ok(function) => {
                if function.name != name {
                    self.stats.verify_fails.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Corrupt {
                        what: format!("unit decodes to mismatched name {}", function.name),
                    });
                }
                let cost = (function.node_count() as u64)
                    .saturating_mul(NODE_COST)
                    .saturating_add(name.len() as u64 + 64);
                if cost > shard_budget {
                    // The byte estimate admitted it but the decoded
                    // tree is too big for its shard: serve verified,
                    // keep nothing resident — residency stays bounded.
                    self.stats.uncacheable.fetch_add(1, Ordering::Relaxed);
                    return Ok(ServeResponse {
                        bytes: bytes.to_vec(),
                        verified: true,
                        cache_hit: false,
                    });
                }
                let mut shard = self.lock_shard(shard_i);
                shard.clock += 1;
                let stamp = shard.clock;
                let prev = shard
                    .entries
                    .insert(name.to_string(), Entry { stamp, cost, function: Arc::new(function) });
                shard.bytes = shard.bytes.saturating_sub(prev.map_or(0, |p| p.cost));
                shard.bytes = shard.bytes.saturating_add(cost);
                let mut evicted = 0;
                while shard.bytes > shard_budget && shard.entries.len() > 1 {
                    evicted += shard.evict_oldest_half();
                }
                if evicted > 0 {
                    self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
                let shard_bytes = shard.bytes;
                drop(shard);
                self.note_peak(shard_bytes, shard_i);
                Ok(ServeResponse { bytes: bytes.to_vec(), verified: true, cache_hit: false })
            }
            Err(WireError::Limit { .. }) => {
                // Budget pressure, not corruption: degrade to raw.
                self.stats.raw_fallbacks.fetch_add(1, Ordering::Relaxed);
                Ok(ServeResponse { bytes: bytes.to_vec(), verified: false, cache_hit: false })
            }
            Err(e) => {
                self.stats.verify_fails.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Corrupt { what: e.to_string() })
            }
        }
    }

    /// Records the new total cached-bytes peak after shard `changed`
    /// moved to `changed_bytes`.
    fn note_peak(&self, changed_bytes: u64, changed: usize) {
        let mut total = changed_bytes;
        for (i, s) in self.shards.iter().enumerate() {
            if i != changed {
                total += s.lock().unwrap_or_else(PoisonError::into_inner).bytes;
            }
        }
        self.stats.peak_cache_bytes.fetch_max(total, Ordering::Relaxed);
    }

    /// Approximate bytes currently held by the verification cache.
    #[must_use]
    pub fn cache_bytes(&self) -> u64 {
        (0..self.shards.len()).map(|i| self.lock_shard(i).bytes).sum()
    }

    /// Snapshot of the server counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            raw_fallbacks: self.stats.raw_fallbacks.load(Ordering::Relaxed),
            verify_fails: self.stats.verify_fails.load(Ordering::Relaxed),
            verify_decodes: self.stats.verify_decodes.load(Ordering::Relaxed),
            uncacheable: self.stats.uncacheable.load(Ordering::Relaxed),
            peak_cache_bytes: self.stats.peak_cache_bytes.load(Ordering::Relaxed),
        }
    }

    /// Publishes the counter totals into the telemetry registry as
    /// `serve.server.*`. Call once at end of a pass (totals are
    /// *added*, so call exactly once per server lifetime for exact
    /// registry totals).
    pub fn publish_telemetry(&self) {
        let s = self.stats();
        telemetry::counter_add("serve.server.requests", s.requests);
        telemetry::counter_add("serve.server.shed", s.shed);
        telemetry::counter_add("serve.cache.hits", s.cache_hits);
        telemetry::counter_add("serve.cache.misses", s.cache_misses);
        telemetry::counter_add("serve.cache.evictions", s.evictions);
        telemetry::counter_add("serve.server.raw_fallbacks", s.raw_fallbacks);
        telemetry::counter_add("serve.server.verify_fails", s.verify_fails);
        telemetry::counter_add("serve.server.verify_decodes", s.verify_decodes);
        telemetry::counter_add("serve.server.uncacheable", s.uncacheable);
        telemetry::gauge_max("serve.cache.peak_bytes", s.peak_cache_bytes);
    }
}
