//! Client-side fetch bookkeeping: quarantine, circuit breaking, and
//! budgeted local decode.
//!
//! [`FetchClient`] is the state machine one simulated client runs per
//! delivery attempt. The caller (the soak harness, or a test scripting
//! a [`crate::channel::Transport`]) performs the wire work and feeds
//! the outcome in as a [`WireEvent`]; the client decides what it means:
//! decode the bytes under its own [`Budget`], quarantine failures with
//! their cause (PR 3's discipline), and drive the per-function
//! [`CircuitBreaker`] so persistent failures stop consuming retries.

use std::collections::BTreeMap;

use codecomp_core::fault::XorShift64;
use codecomp_core::limits::{Budget, DecodeLimits};
use codecomp_ir::tree::Function;

use crate::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::retry::RetryPolicy;
use crate::{Nanos, SECOND};

/// Tunables for one [`FetchClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Retry/backoff/deadline policy.
    pub retry: RetryPolicy,
    /// Per-function breaker policy.
    pub breaker: BreakerPolicy,
    /// Basis for the client-side decode budget (fresh per attempt, so
    /// corrupted deliveries cannot drain the client's meters).
    pub limits: DecodeLimits,
    /// Per-attempt wire cutoff handed to the channel.
    pub attempt_timeout: Nanos,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            limits: DecodeLimits::default(),
            attempt_timeout: 30 * SECOND,
        }
    }
}

/// What the wire produced for one attempt, as seen by the client.
#[derive(Debug, Clone)]
pub enum WireEvent<'a> {
    /// Server shed the request (pushback, not a unit failure).
    Shed {
        /// Server's suggested wait.
        retry_after: Nanos,
    },
    /// Server verdict: the unit is corrupt at the source.
    SourceCorrupt {
        /// Decode error description.
        what: String,
    },
    /// Server has no such unit.
    Unknown,
    /// Bytes arrived (possibly corrupted in flight).
    Delivered {
        /// Compressed unit bytes, post-channel.
        bytes: &'a [u8],
        /// Whether the server verified the unit at the source.
        verified: bool,
    },
    /// Nothing arrived before the attempt cutoff.
    TimedOut,
}

/// Why an attempt did not yield a resident function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptError {
    /// The per-function breaker refused the attempt.
    BreakerOpen {
        /// Earliest virtual time a probe may run.
        until: Nanos,
    },
    /// Server pushback; retry after the hint.
    Shed {
        /// Server's suggested wait.
        retry_after: Nanos,
    },
    /// Source-corrupt verdict from the server (permanent).
    SourceCorrupt {
        /// Decode error description.
        what: String,
    },
    /// No such function (permanent).
    Unknown,
    /// Attempt cutoff elapsed.
    Timeout,
    /// Delivered bytes failed the local decode (channel corruption, or
    /// source corruption when the server could not verify).
    CorruptDelivery {
        /// Decode error description.
        what: String,
    },
}

impl AttemptError {
    /// Whether retrying can never help.
    #[must_use]
    pub fn is_permanent(&self) -> bool {
        matches!(self, AttemptError::SourceCorrupt { .. } | AttemptError::Unknown)
    }
}

/// Aggregate per-client counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Wire attempts fed through [`FetchClient::on_attempt`].
    pub attempts: u64,
    /// Attempts that produced a resident function.
    pub successes: u64,
    /// Shed verdicts observed.
    pub sheds: u64,
    /// Attempt timeouts.
    pub timeouts: u64,
    /// Local decode failures on delivered bytes.
    pub corrupt_deliveries: u64,
    /// Source-corrupt verdicts observed.
    pub source_corrupt: u64,
    /// Functions that entered quarantine at least once.
    pub quarantines: u64,
    /// Quarantine exits (a previously failing unit decoded cleanly).
    pub recoveries: u64,
}

/// One simulated client's fetch state.
pub struct FetchClient {
    id: u64,
    cfg: ClientConfig,
    rng: XorShift64,
    breakers: BTreeMap<String, CircuitBreaker>,
    quarantine: BTreeMap<String, String>,
    resident: BTreeMap<String, Function>,
    stats: ClientStats,
}

impl FetchClient {
    /// A fresh client. `seed` drives only backoff jitter.
    #[must_use]
    pub fn new(id: u64, cfg: ClientConfig, seed: u64) -> FetchClient {
        FetchClient {
            id,
            cfg,
            rng: XorShift64::new(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            breakers: BTreeMap::new(),
            quarantine: BTreeMap::new(),
            resident: BTreeMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// Client id (the server's budget key).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This client's configuration.
    #[must_use]
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Current breaker state for `name` (closed if never touched).
    #[must_use]
    pub fn breaker_state(&self, name: &str) -> BreakerState {
        self.breakers.get(name).map_or(BreakerState::Closed, CircuitBreaker::state)
    }

    /// Sums breaker counters across all functions:
    /// `(opens, half_opens, recoveries, rejects)`.
    #[must_use]
    pub fn breaker_totals(&self) -> (u64, u64, u64, u64) {
        self.breakers.values().fold((0, 0, 0, 0), |acc, b| {
            (acc.0 + b.opens, acc.1 + b.half_opens, acc.2 + b.recoveries, acc.3 + b.rejects)
        })
    }

    /// The quarantine cause for `name`, if it is quarantined.
    #[must_use]
    pub fn quarantined(&self, name: &str) -> Option<&str> {
        self.quarantine.get(name).map(String::as_str)
    }

    /// Number of functions currently quarantined.
    #[must_use]
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    /// The resident decoded function, if delivered.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.resident.get(name)
    }

    /// Number of resident functions.
    #[must_use]
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Gate an attempt on the per-function breaker at virtual `now`.
    ///
    /// # Errors
    ///
    /// [`AttemptError::BreakerOpen`] while the breaker's cooldown runs.
    pub fn pre_admit(&mut self, now: Nanos, name: &str) -> Result<(), AttemptError> {
        let policy = self.cfg.breaker;
        let b = self
            .breakers
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(policy));
        if b.admit(now) {
            Ok(())
        } else {
            Err(AttemptError::BreakerOpen { until: b.retry_at().unwrap_or(now) })
        }
    }

    /// Feeds one wire outcome in at completion time `now`; on success
    /// the function is resident and any quarantine entry is cleared.
    ///
    /// # Errors
    ///
    /// The [`AttemptError`] classification of the failure; breaker and
    /// quarantine bookkeeping is already applied.
    pub fn on_attempt(
        &mut self,
        now: Nanos,
        name: &str,
        event: WireEvent<'_>,
    ) -> Result<&Function, AttemptError> {
        self.stats.attempts += 1;
        match event {
            WireEvent::Shed { retry_after } => {
                // Pushback, not a unit failure: no breaker penalty.
                self.stats.sheds += 1;
                Err(AttemptError::Shed { retry_after })
            }
            WireEvent::SourceCorrupt { what } => {
                self.stats.source_corrupt += 1;
                self.note_failure(now, name, &what);
                Err(AttemptError::SourceCorrupt { what })
            }
            WireEvent::Unknown => {
                self.note_failure(now, name, "unknown function");
                Err(AttemptError::Unknown)
            }
            WireEvent::TimedOut => {
                self.stats.timeouts += 1;
                self.breaker_mut(name).record_failure(now);
                Err(AttemptError::Timeout)
            }
            WireEvent::Delivered { bytes, verified: _ } => {
                // Fresh budget per attempt: a corrupted delivery must
                // not drain meters shared with future attempts.
                let budget = Budget::new(self.cfg.limits);
                match decode_unit(bytes, name, &budget) {
                    Ok(function) => {
                        self.stats.successes += 1;
                        if self.quarantine.remove(name).is_some() {
                            self.stats.recoveries += 1;
                        }
                        self.breaker_mut(name).record_success();
                        Ok(self.resident.entry(name.to_string()).or_insert(function))
                    }
                    Err(what) => {
                        self.stats.corrupt_deliveries += 1;
                        self.note_failure(now, name, &what);
                        Err(AttemptError::CorruptDelivery { what })
                    }
                }
            }
        }
    }

    /// Earliest virtual time the next attempt should run after attempt
    /// number `attempt` (1-based) failed at `now`: backoff with
    /// deterministic jitter, pushed past the breaker cooldown if the
    /// failure tripped it.
    pub fn next_retry_at(&mut self, now: Nanos, name: &str, attempt: u32) -> Nanos {
        let backoff = self.cfg.retry.backoff(attempt, &mut self.rng);
        let at = now.saturating_add(backoff);
        match self.breakers.get(name).and_then(CircuitBreaker::retry_at) {
            Some(open_until) => at.max(open_until),
            None => at,
        }
    }

    fn breaker_mut(&mut self, name: &str) -> &mut CircuitBreaker {
        let policy = self.cfg.breaker;
        self.breakers
            .entry(name.to_string())
            .or_insert_with(|| CircuitBreaker::new(policy))
    }

    fn note_failure(&mut self, now: Nanos, name: &str, what: &str) {
        if self.quarantine.insert(name.to_string(), what.to_string()).is_none() {
            self.stats.quarantines += 1;
        }
        self.breaker_mut(name).record_failure(now);
    }
}

/// Decodes one unit's bytes — a single-function wire module, as
/// produced by `DemandImage::unit_bytes` — into the named function,
/// mapping every decode error to its display string.
fn decode_unit(bytes: &[u8], name: &str, budget: &Budget) -> Result<Function, String> {
    match codecomp_wire::decompress_budgeted(bytes, budget) {
        Ok(module) => module
            .functions
            .into_iter()
            .find(|f| f.name == name)
            .ok_or_else(|| format!("unit does not contain function {name}")),
        Err(e) => Err(e.to_string()),
    }
}
