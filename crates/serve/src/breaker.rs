//! Per-function circuit breaker: closed → open → half-open.
//!
//! PR 3's quarantine records *that* a unit failed; the breaker decides
//! *whether another attempt is worth the wire time*. Consecutive
//! failures trip the breaker open; while open, attempts are refused
//! until a cooldown elapses; the first attempt after the cooldown runs
//! in half-open state as a probe. A probe success closes the breaker
//! (and the caller clears its quarantine entry); a probe failure
//! re-opens it with an escalated cooldown, so a persistently corrupt
//! unit consumes retries at an exponentially decaying rate while a
//! transiently faulty one recovers in one probe.

use crate::{Nanos, MILLI, SECOND};

/// Breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Attempts refused until the cooldown deadline.
    Open,
    /// Cooldown elapsed; the next attempt is a probe.
    HalfOpen,
}

/// Tunables for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip closed → open.
    pub failure_threshold: u32,
    /// First cooldown after tripping open.
    pub cooldown: Nanos,
    /// Each re-trip from half-open multiplies the cooldown by this.
    pub escalation: u32,
    /// Cooldown ceiling; escalation saturates here.
    pub max_cooldown: Nanos,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown: 50 * MILLI,
            escalation: 4,
            max_cooldown: 30 * SECOND,
        }
    }
}

/// One function's breaker. Plain data — callers (one per client) own
/// theirs; no interior locking.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Nanos,
    current_cooldown: Nanos,
    /// Times the breaker tripped closed/half-open → open.
    pub opens: u64,
    /// Times an open breaker admitted a half-open probe.
    pub half_opens: u64,
    /// Times a probe success closed the breaker again.
    pub recoveries: u64,
    /// Attempts refused while open.
    pub rejects: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: 0,
            current_cooldown: policy.cooldown.max(1),
            opens: 0,
            half_opens: 0,
            recoveries: 0,
            rejects: 0,
        }
    }

    /// Current state, as of the last `admit`/`record_*` call.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether an attempt may proceed at virtual time `now`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the probe.
    pub fn admit(&mut self, now: Nanos) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now >= self.open_until => {
                self.state = BreakerState::HalfOpen;
                self.half_opens += 1;
                true
            }
            BreakerState::Open => {
                self.rejects += 1;
                false
            }
        }
    }

    /// Earliest virtual time at which [`Self::admit`] can return true,
    /// if the breaker is currently refusing attempts.
    #[must_use]
    pub fn retry_at(&self) -> Option<Nanos> {
        match self.state {
            BreakerState::Open => Some(self.open_until),
            _ => None,
        }
    }

    /// Reports a successful attempt: closes the breaker and resets the
    /// failure count and cooldown escalation.
    pub fn record_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.recoveries += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.current_cooldown = self.policy.cooldown.max(1);
    }

    /// Reports a failed attempt at virtual time `now`. A half-open
    /// probe failure re-opens with an escalated cooldown; a closed
    /// breaker opens once the consecutive-failure threshold is met.
    pub fn record_failure(&mut self, now: Nanos) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                self.current_cooldown = self
                    .current_cooldown
                    .saturating_mul(u64::from(self.policy.escalation.max(1)))
                    .min(self.policy.max_cooldown.max(1));
                self.trip(now);
            }
            BreakerState::Closed
                if self.consecutive_failures >= self.policy.failure_threshold.max(1) =>
            {
                self.trip(now);
            }
            _ => {}
        }
    }

    fn trip(&mut self, now: Nanos) {
        self.state = BreakerState::Open;
        self.open_until = now.saturating_add(self.current_cooldown);
        self.opens += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 2,
            cooldown: 100,
            escalation: 4,
            max_cooldown: 1_000,
        }
    }

    #[test]
    fn trips_after_threshold_and_half_opens_after_cooldown() {
        let mut b = CircuitBreaker::new(policy());
        assert!(b.admit(0));
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.retry_at(), Some(110));

        assert!(!b.admit(50), "cooldown still running");
        assert_eq!(b.rejects, 1);
        assert!(b.admit(110), "cooldown boundary admits the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_opens, 1);

        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn probe_failure_escalates_cooldown_to_cap() {
        let mut b = CircuitBreaker::new(policy());
        b.record_failure(0);
        b.record_failure(0); // open, cooldown 100, until 100
        let mut now = 100;
        let mut widths = Vec::new();
        for _ in 0..4 {
            assert!(b.admit(now));
            b.record_failure(now);
            let until = b.retry_at().expect("open after probe failure");
            widths.push(until - now);
            now = until;
        }
        assert_eq!(widths, vec![400, 1_000, 1_000, 1_000], "x4 then capped");
        assert_eq!(b.opens, 5);

        // Recovery resets escalation.
        assert!(b.admit(now));
        b.record_success();
        b.record_failure(now);
        b.record_failure(now);
        assert_eq!(b.retry_at(), Some(now + 100), "cooldown back to base");
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut b = CircuitBreaker::new(policy());
        for _ in 0..10 {
            b.record_failure(0);
            b.record_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens, 0, "alternating failure/success never trips");
    }
}
