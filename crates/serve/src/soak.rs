//! Discrete-event soak harness: N clients × {modem, LAN, disk} ×
//! injected fault rates, in virtual time.
//!
//! The harness is a single-threaded event loop over virtual
//! nanoseconds, so a soak of tens of thousands of requests runs in
//! well under a second of wall clock and is bit-deterministic in its
//! seed: the same [`SoakConfig`] produces the same [`SoakReport`],
//! field for field, on every run. Server-side queueing is modeled as a
//! small pool of virtual decode workers with a bounded projected wait
//! — arrivals whose wait would exceed the bound are shed with an
//! explicit retry-after, the same verdict the thread-safe
//! [`ModuleServer`] issues at real admission saturation.
//!
//! Survival properties the harness reports (and tests assert): no
//! stuck requests, bounded per-request attempts, bounded cache memory,
//! and eventual delivery of every function that is not corrupt at the
//! source.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use codecomp_core::fault::XorShift64;
use codecomp_core::telemetry;
use codecomp_core::telemetry::reconcile::{
    ReqSpan, SpanLog, SPAN_ATTEMPT, SPAN_CACHE, SPAN_CHANNEL, SPAN_DECODE, SPAN_REQUEST,
    SPAN_WAIT_BREAKER, SPAN_WAIT_SHED,
};
use codecomp_core::telemetry::stream::MetricsStreamer;
use codecomp_core::telemetry::{LocalHistogram, Registry, Snapshot};
use codecomp_memsim::Channel;
use codecomp_wire::demand::DemandImage;

use crate::channel::{FaultyChannel, Transport};
use crate::client::{AttemptError, ClientConfig, FetchClient, WireEvent};
use crate::server::{ModuleServer, ServeError, ServerConfig};
use crate::{secs_to_nanos, Nanos, MILLI};

/// Fixed per-request server overhead added to every virtual service
/// time (admission, lookup, framing).
const SERVICE_OVERHEAD: Nanos = 20_000;

/// Bound on breaker-wait/shed reschedules per request, so an
/// always-open breaker cannot spin the event loop within one request's
/// deadline window.
const MAX_WAITS_PER_REQUEST: u32 = 32;

/// The paper's three channel models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// 28.8 kbit/s modem.
    Modem,
    /// 10 Mbit/s LAN.
    Lan,
    /// Mid-90s disk.
    Disk,
}

impl ChannelKind {
    /// The `memsim` model.
    #[must_use]
    pub fn model(self) -> Channel {
        match self {
            ChannelKind::Modem => Channel::modem_28k8(),
            ChannelKind::Lan => Channel::lan_10mbit(),
            ChannelKind::Disk => Channel::disk(),
        }
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChannelKind::Modem => "modem",
            ChannelKind::Lan => "lan",
            ChannelKind::Disk => "disk",
        }
    }
}

/// Soak harness tunables.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; every PRNG in the run derives from it.
    pub seed: u64,
    /// Simulated client count, round-robined over the channel kinds.
    pub clients: usize,
    /// Requests each client completes (delivered or abandoned).
    pub requests_per_client: u64,
    /// Channel fault probability numerator.
    pub fault_num: u64,
    /// Channel fault probability denominator.
    pub fault_den: u64,
    /// Channel models to spread clients across.
    pub channels: Vec<ChannelKind>,
    /// Server configuration.
    pub server: ServerConfig,
    /// Client configuration.
    pub client: ClientConfig,
    /// Mean virtual gap between a client's requests (jittered ±50%).
    pub think_time: Nanos,
    /// Virtual decode worker count.
    pub workers: usize,
    /// Shed arrivals whose projected queue wait exceeds this.
    pub max_queue_wait: Nanos,
    /// Server decode throughput (bytes/s) for virtual service times.
    pub decode_rate: f64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            clients: 12,
            requests_per_client: 100,
            fault_num: 1,
            fault_den: 100,
            channels: vec![ChannelKind::Modem, ChannelKind::Lan, ChannelKind::Disk],
            server: ServerConfig::default(),
            client: ClientConfig::default(),
            think_time: 5 * MILLI,
            workers: 4,
            max_queue_wait: 250 * MILLI,
            decode_rate: 4_000_000.0,
        }
    }
}

/// Everything a soak run measured. Same seed → equal reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoakReport {
    /// Virtual time the run covered.
    pub virtual_duration: Nanos,
    /// Requests issued (each ends delivered, failed, or stuck).
    pub requests: u64,
    /// Requests that delivered a decoded function.
    pub delivered: u64,
    /// Requests abandoned (attempt/deadline/wait budget exhausted, or
    /// a permanent verdict).
    pub failed: u64,
    /// Wire attempts.
    pub attempts: u64,
    /// Attempts beyond each request's first.
    pub retries: u64,
    /// Shed verdicts (virtual queue + real admission).
    pub sheds: u64,
    /// Attempt timeouts.
    pub timeouts: u64,
    /// Deliveries that failed client-side decode.
    pub corrupt_deliveries: u64,
    /// Source-corrupt verdicts from the server.
    pub source_corrupt: u64,
    /// Breaker trips to open.
    pub breaker_opens: u64,
    /// Half-open probes admitted.
    pub breaker_half_opens: u64,
    /// Probe successes that re-closed a breaker.
    pub breaker_recoveries: u64,
    /// Attempts refused by open breakers.
    pub breaker_rejects: u64,
    /// Functions that entered quarantine at least once.
    pub quarantines: u64,
    /// Quarantine exits.
    pub quarantine_recoveries: u64,
    /// Functions still quarantined (summed over clients) at the end.
    pub quarantined_end: u64,
    /// Server verification-cache hits.
    pub cache_hits: u64,
    /// Server verification-cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Requests served raw under pressure.
    pub raw_fallbacks: u64,
    /// Peak approximate cache bytes.
    pub peak_cache_bytes: u64,
    /// Largest per-request wire attempt count observed.
    pub max_attempts_seen: u32,
    /// Clients that never finished their quota (must be 0).
    pub stuck_clients: u64,
    /// Distinct functions requested.
    pub names_requested: u64,
    /// Distinct functions delivered to at least one requester.
    pub names_delivered: u64,
    /// Functions requested but never delivered anywhere, excluding
    /// source-corrupt ones (must be empty for a surviving run).
    pub undelivered: Vec<String>,
    /// Functions the server proved corrupt at the source.
    pub permanently_corrupt: Vec<String>,
}

impl SoakReport {
    /// The `serve.*` counter totals this run represents, in a stable
    /// order. These are what [`Self::publish_telemetry`] adds to the
    /// registry, and what determinism tests compare.
    #[must_use]
    pub fn counter_totals(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("serve.requests", self.requests),
            ("serve.delivered", self.delivered),
            ("serve.failed", self.failed),
            ("serve.attempts", self.attempts),
            ("serve.retries", self.retries),
            ("serve.shed", self.sheds),
            ("serve.timeouts", self.timeouts),
            ("serve.corrupt_deliveries", self.corrupt_deliveries),
            ("serve.source_corrupt", self.source_corrupt),
            ("serve.breaker.opens", self.breaker_opens),
            ("serve.breaker.half_opens", self.breaker_half_opens),
            ("serve.breaker.recoveries", self.breaker_recoveries),
            ("serve.breaker.rejects", self.breaker_rejects),
            ("serve.quarantines", self.quarantines),
            ("serve.quarantine.recoveries", self.quarantine_recoveries),
            ("serve.cache.hits", self.cache_hits),
            ("serve.cache.misses", self.cache_misses),
            ("serve.cache.evictions", self.cache_evictions),
            ("serve.raw_fallbacks", self.raw_fallbacks),
        ]
    }

    /// Adds the run's totals to the telemetry registry (one batch, so
    /// totals stay deterministic) plus the peak-cache gauge.
    pub fn publish_telemetry(&self) {
        for (name, v) in self.counter_totals() {
            telemetry::counter_add(name, v);
        }
        telemetry::gauge_max("serve.cache.peak_bytes", self.peak_cache_bytes);
        telemetry::gauge_set("serve.soak.virtual_millis", self.virtual_duration / MILLI);
        telemetry::event(
            "serve.soak.summary",
            vec![
                ("requests", self.requests.into()),
                ("delivered", self.delivered.into()),
                ("failed", self.failed.into()),
                ("retries", self.retries.into()),
                ("sheds", self.sheds.into()),
                ("stuck_clients", self.stuck_clients.into()),
                ("undelivered", (self.undelivered.len() as u64).into()),
            ],
        );
    }

    /// Whether the run survived: nothing stuck, nothing silently
    /// undelivered.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.stuck_clients == 0 && self.undelivered.is_empty()
    }
}

/// Live observation attached to a soak run: an optional interval-
/// driven metric stream and an optional request-scoped span log.
///
/// Both are driven by the soak's *virtual* clock, so the same seed
/// produces byte-identical stream lines and an identical span log on
/// every run. The default observer records nothing beyond the
/// (always-cheap) request-latency histogram.
#[derive(Debug, Default)]
pub struct SoakObserver {
    metrics_interval: Option<Nanos>,
    collect_spans: bool,
    streamer: MetricsStreamer,
    latency: LocalHistogram,
    /// Delta-encoded JSON-lines metric stream, one line per sample
    /// tick (see [`codecomp_core::telemetry::stream`] for the schema).
    pub stream_lines: Vec<String>,
    /// The request-scoped span log (empty unless spans are enabled).
    pub spans: SpanLog,
}

impl SoakObserver {
    /// An observer that records nothing extra.
    #[must_use]
    pub fn new() -> SoakObserver {
        SoakObserver::default()
    }

    /// Samples the run's metrics every `interval` virtual nanos into
    /// [`Self::stream_lines`] (stream timestamps are virtual millis).
    #[must_use]
    pub fn with_metrics_interval(mut self, interval: Nanos) -> SoakObserver {
        self.metrics_interval = Some(interval.max(1));
        self
    }

    /// Records a [`ReqSpan`] per request lifecycle edge into
    /// [`Self::spans`], ready for [`reconcile`](codecomp_core::telemetry::reconcile::reconcile).
    #[must_use]
    pub fn with_spans(mut self) -> SoakObserver {
        self.collect_spans = true;
        self
    }

    /// The registry snapshot this run's final report represents —
    /// exactly what [`SoakReport::publish_telemetry`] would publish,
    /// plus the request-latency histogram. Feed it to
    /// [`reconcile`](codecomp_core::telemetry::reconcile::reconcile)
    /// together with [`Self::spans`].
    #[must_use]
    pub fn final_snapshot(&self, report: &SoakReport) -> Snapshot {
        registry_snapshot(report, &self.latency)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the ReqSpan field list
    fn span(
        &mut self,
        name: &str,
        req: u64,
        attempt: u32,
        client: u64,
        start: Nanos,
        end: Nanos,
        outcome: &str,
    ) {
        if self.collect_spans {
            self.spans.push(ReqSpan {
                name: name.to_string(),
                req,
                attempt,
                client,
                start,
                end,
                outcome: outcome.to_string(),
            });
        }
    }

    /// Emits one stream line for the state of the run at `tick`.
    fn emit_sample(
        &mut self,
        tick: Nanos,
        report: &SoakReport,
        clients: &[SimClient],
        server: &ModuleServer,
        now: Nanos,
    ) {
        let mut partial = report.clone();
        fold_runtime_stats(&mut partial, clients, server);
        partial.virtual_duration = now;
        let snap = registry_snapshot(&partial, &self.latency);
        let line = self.streamer.sample(tick / MILLI, &snap);
        self.stream_lines.push(line);
    }
}

/// Builds the registry snapshot `report` represents: its counter
/// totals, the peak-cache/virtual-time gauges, and the request-latency
/// histogram.
fn registry_snapshot(report: &SoakReport, latency: &LocalHistogram) -> Snapshot {
    let r = Registry::new();
    for (name, v) in report.counter_totals() {
        r.counter(name).add(v);
    }
    r.gauge("serve.cache.peak_bytes").set(report.peak_cache_bytes);
    r.gauge("serve.soak.virtual_millis").set(report.virtual_duration / MILLI);
    r.histogram("serve.request.latency_ns").merge(latency);
    r.snapshot()
}

/// Virtual decode-worker pool with a bounded projected wait.
struct VirtualQueue {
    worker_free: Vec<Nanos>,
    max_wait: Nanos,
}

impl VirtualQueue {
    fn new(workers: usize, max_wait: Nanos) -> VirtualQueue {
        VirtualQueue { worker_free: vec![0; workers.max(1)], max_wait }
    }

    /// Books `service` virtual nanos on the earliest-free worker.
    /// `Err(retry_after)` sheds arrivals whose wait would exceed the
    /// bound.
    fn admit(&mut self, now: Nanos, service: Nanos) -> Result<Nanos, Nanos> {
        let (slot, free) = self
            .worker_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, t)| (t, i))
            .expect("worker pool is never empty");
        let start = free.max(now);
        let wait = start - now;
        if wait > self.max_wait {
            return Err(wait);
        }
        let finish = start.saturating_add(service);
        self.worker_free[slot] = finish;
        Ok(finish)
    }
}

struct ActiveRequest {
    name: String,
    request_id: u64,
    attempt: u32,
    waits: u32,
    started: Nanos,
}

struct SimClient {
    fetch: FetchClient,
    channel: FaultyChannel,
    workload: XorShift64,
    order: Vec<usize>,
    cursor: usize,
    done: u64,
    active: Option<ActiveRequest>,
}

/// Runs the soak: builds a [`ModuleServer`] over `image`, spreads
/// `cfg.clients` simulated clients across the channel models, and
/// drives the event loop until every client finishes its request quota
/// (or provably cannot, which the report flags as stuck).
#[must_use]
pub fn run_soak(image: &DemandImage, cfg: &SoakConfig) -> SoakReport {
    run_soak_observed(image, cfg, &mut SoakObserver::new())
}

/// [`run_soak`] with live observation: `obs` receives the metric
/// stream samples and request-scoped spans it was configured for.
#[must_use]
pub fn run_soak_observed(
    image: &DemandImage,
    cfg: &SoakConfig,
    obs: &mut SoakObserver,
) -> SoakReport {
    let names: Vec<String> = image.names().map(str::to_string).collect();
    let server = ModuleServer::new(image.clone(), cfg.server.clone());
    let channels: &[ChannelKind] = if cfg.channels.is_empty() {
        &[ChannelKind::Lan]
    } else {
        &cfg.channels
    };

    let mut report = SoakReport::default();
    if names.is_empty() || cfg.clients == 0 || cfg.requests_per_client == 0 {
        return report;
    }

    let mut clients: Vec<SimClient> = (0..cfg.clients)
        .map(|i| {
            let id = i as u64;
            let kind = channels[i % channels.len()];
            let attempt_timeout = cfg.client.attempt_timeout;
            let channel = FaultyChannel::new(
                kind.model(),
                cfg.seed ^ 0xc1a0_5eed,
                cfg.fault_num,
                cfg.fault_den,
            )
            .with_timeout(attempt_timeout);
            let mut workload =
                XorShift64::new((cfg.seed ^ id.wrapping_mul(0x2545_f491_4f6c_dd1d)) | 1);
            // Each client walks its own seeded shuffle of the name
            // list, so every function is requested by every client
            // once per lap — eventual delivery is a workload property,
            // not luck.
            let mut order: Vec<usize> = (0..names.len()).collect();
            for j in (1..order.len()).rev() {
                order.swap(j, workload.below(j as u64 + 1) as usize);
            }
            SimClient {
                fetch: FetchClient::new(id, cfg.client, cfg.seed),
                channel,
                workload,
                order,
                cursor: 0,
                done: 0,
                active: None,
            }
        })
        .collect();

    let mut queue = VirtualQueue::new(cfg.workers, cfg.max_queue_wait);
    // (virtual time, sequence) orders events totally — sequence breaks
    // ties deterministically.
    let mut heap: BinaryHeap<Reverse<(Nanos, u64, usize)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<_>, seq: &mut u64, t: Nanos, c: usize| {
        heap.push(Reverse((t, *seq, c)));
        *seq += 1;
    };
    for (i, c) in clients.iter_mut().enumerate() {
        let jitter = c.workload.below(cfg.think_time.max(1));
        push(&mut heap, &mut seq, jitter, i);
    }

    let mut next_request_id: u64 = 0;
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut delivered_names: BTreeSet<String> = BTreeSet::new();
    let mut corrupt_names: BTreeSet<String> = BTreeSet::new();
    let mut now: Nanos = 0;
    // Backstop far above any legitimate schedule; tripping it marks
    // the run stuck instead of hanging the test suite.
    let event_cap = cfg
        .clients
        .max(1) as u64
        * cfg.requests_per_client
        * (u64::from(cfg.client.retry.max_attempts.max(1)) + u64::from(MAX_WAITS_PER_REQUEST))
        * 4
        + 10_000;
    let mut events: u64 = 0;
    let mut next_sample: Nanos = 0;

    while let Some(Reverse((t, _, ci))) = heap.pop() {
        now = now.max(t);
        events += 1;
        if events > event_cap {
            break;
        }
        // Metric stream ticks fire on the virtual clock, before this
        // event mutates anything: each line is the state as of the
        // moment the tick was crossed.
        if let Some(interval) = obs.metrics_interval {
            while t >= next_sample {
                obs.emit_sample(next_sample, &report, &clients, &server, now);
                next_sample = next_sample.saturating_add(interval);
            }
        }
        let think = think_gap(cfg.think_time, &mut clients[ci].workload);

        // Start a request if idle.
        if clients[ci].active.is_none() {
            if clients[ci].done >= cfg.requests_per_client {
                continue;
            }
            let c = &mut clients[ci];
            let idx = c.order[c.cursor % c.order.len()];
            c.cursor += 1;
            let name = names[idx].clone();
            requested.insert(name.clone());
            c.active = Some(ActiveRequest {
                name,
                request_id: next_request_id,
                attempt: 0,
                waits: 0,
                started: t,
            });
            next_request_id += 1;
            report.requests += 1;
        }

        // One attempt step for the active request.
        let (name, request_id, attempt_no) = {
            let a = clients[ci].active.as_mut().expect("active request exists");
            a.attempt += 1;
            (a.name.clone(), a.request_id, a.attempt)
        };
        report.attempts += 1;
        if attempt_no > 1 {
            report.retries += 1;
        }
        report.max_attempts_seen = report.max_attempts_seen.max(attempt_no);
        let client_id = clients[ci].fetch.id();

        // Breaker gate.
        if let Err(AttemptError::BreakerOpen { until }) = clients[ci].fetch.pre_admit(t, &name) {
            // No wire traffic: not a wire attempt after all.
            report.attempts -= 1;
            if attempt_no > 1 {
                report.retries -= 1;
            }
            let a = clients[ci].active.as_mut().expect("active");
            a.attempt -= 1;
            a.waits += 1;
            let deadline = a.started.saturating_add(cfg.client.retry.deadline);
            let resume = until.max(t + 1);
            if a.waits > MAX_WAITS_PER_REQUEST || resume > deadline {
                // Zero-length wait span: the request dies here, and a
                // child span may not outlive its request window.
                obs.span(SPAN_WAIT_BREAKER, request_id, 0, client_id, t, t, "abandoned");
                finish_request(&mut clients[ci], &mut report, false, t, obs);
                push(&mut heap, &mut seq, t.saturating_add(think), ci);
            } else {
                obs.span(SPAN_WAIT_BREAKER, request_id, 0, client_id, t, resume, "wait");
                push(&mut heap, &mut seq, resume, ci);
            }
            continue;
        }

        // Server phase: virtual queue, then the real (thread-safe)
        // request.
        let unit_len = image.unit_size(&name).unwrap_or(0);
        let service = SERVICE_OVERHEAD
            + if server.is_cached(&name) {
                0
            } else {
                secs_to_nanos(unit_len as f64 / cfg.decode_rate)
            };
        let queue_verdict = queue.admit(t, service);
        let server_result = match queue_verdict {
            Err(wait) => Err(ServeError::Shed { retry_after: wait }),
            Ok(_) => server.request(clients[ci].fetch.id(), &name),
        };
        let t_resp = match queue_verdict {
            Ok(finish) => finish,
            Err(wait) => t.saturating_add(wait.min(cfg.max_queue_wait)),
        };

        let (t_done, outcome) = match server_result {
            Err(ServeError::Shed { retry_after }) => {
                let e = clients[ci]
                    .fetch
                    .on_attempt(t_resp, &name, WireEvent::Shed { retry_after })
                    .err();
                (t_resp, e)
            }
            Err(ServeError::UnknownFunction) => {
                let e = clients[ci].fetch.on_attempt(t_resp, &name, WireEvent::Unknown).err();
                (t_resp, e)
            }
            Err(ServeError::Corrupt { what }) => {
                corrupt_names.insert(name.clone());
                // The server consumed a cache miss proving the unit
                // corrupt (see `ModuleServer::request`).
                obs.span(SPAN_CACHE, request_id, attempt_no, client_id, t_resp, t_resp, "source_corrupt");
                let e = clients[ci]
                    .fetch
                    .on_attempt(t_resp, &name, WireEvent::SourceCorrupt { what })
                    .err();
                (t_resp, e)
            }
            Ok(resp) => {
                // Cache verdict: hit XOR miss for every attempt the
                // server actually served; raw fallbacks are misses
                // that degraded to unverified bytes.
                let verdict = if resp.cache_hit {
                    "hit"
                } else if resp.verified {
                    "miss"
                } else {
                    "raw"
                };
                obs.span(SPAN_CACHE, request_id, attempt_no, client_id, t_resp, t_resp, verdict);
                let delivery = clients[ci].channel.deliver(request_id, attempt_no, &resp.bytes);
                let t_done = t_resp.saturating_add(delivery.elapsed);
                let event = match &delivery.outcome {
                    crate::channel::DeliveryOutcome::TimedOut => WireEvent::TimedOut,
                    crate::channel::DeliveryOutcome::Delivered(bytes) => {
                        WireEvent::Delivered { bytes, verified: resp.verified }
                    }
                };
                let delivered_bytes =
                    matches!(&delivery.outcome, crate::channel::DeliveryOutcome::Delivered(_));
                obs.span(
                    SPAN_CHANNEL,
                    request_id,
                    attempt_no,
                    client_id,
                    t_resp,
                    t_done,
                    if delivered_bytes { "delivered" } else { "timeout" },
                );
                let e = clients[ci].fetch.on_attempt(t_done, &name, event).err();
                if delivered_bytes {
                    // Client-side decode verdict of the delivered bytes.
                    let ok = !matches!(e, Some(AttemptError::CorruptDelivery { .. }));
                    obs.span(
                        SPAN_DECODE,
                        request_id,
                        attempt_no,
                        client_id,
                        t_done,
                        t_done,
                        if ok { "ok" } else { "corrupt" },
                    );
                }
                (t_done, e)
            }
        };

        // One attempt span per wire attempt; sheds are pushback, not
        // attempts, and get a wait span in the retry arm instead.
        match &outcome {
            Some(AttemptError::Shed { .. }) => {}
            Some(err) => {
                let label = match err {
                    AttemptError::Timeout => "timeout",
                    AttemptError::CorruptDelivery { .. } => "corrupt_delivery",
                    AttemptError::SourceCorrupt { .. } => "source_corrupt",
                    AttemptError::Unknown => "unknown",
                    AttemptError::Shed { .. } | AttemptError::BreakerOpen { .. } => unreachable!(),
                };
                obs.span(SPAN_ATTEMPT, request_id, attempt_no, client_id, t, t_done, label);
            }
            None => {
                obs.span(SPAN_ATTEMPT, request_id, attempt_no, client_id, t, t_done, "delivered");
            }
        }

        match outcome {
            None => {
                delivered_names.insert(name);
                report.delivered += 1;
                finish_request(&mut clients[ci], &mut report, true, t_done, obs);
                push(&mut heap, &mut seq, t_done.saturating_add(think), ci);
            }
            Some(err) => {
                match &err {
                    AttemptError::Shed { .. } => {
                        report.sheds += 1;
                        obs.span(SPAN_WAIT_SHED, request_id, 0, client_id, t, t_done, "shed");
                    }
                    AttemptError::Timeout => report.timeouts += 1,
                    AttemptError::CorruptDelivery { .. } => report.corrupt_deliveries += 1,
                    AttemptError::SourceCorrupt { .. } => report.source_corrupt += 1,
                    _ => {}
                }
                let give_up = err.is_permanent()
                    || attempt_no >= cfg.client.retry.max_attempts.max(1);
                let a = clients[ci].active.as_mut().expect("active");
                let deadline = a.started.saturating_add(cfg.client.retry.deadline);
                let next_at = match &err {
                    AttemptError::Shed { retry_after } => {
                        // Shed is pushback, not failure: honor the
                        // server's hint (plus jitter), don't burn an
                        // attempt-sized backoff.
                        a.attempt -= 1;
                        report.attempts -= 1;
                        if attempt_no > 1 {
                            report.retries -= 1;
                        }
                        a.waits += 1;
                        let jitter = clients[ci].workload.below(MILLI.max(1));
                        t_done.saturating_add(*retry_after).saturating_add(jitter)
                    }
                    _ => clients[ci].fetch.next_retry_at(t_done, &name, attempt_no),
                };
                let a = clients[ci].active.as_ref().expect("active");
                let exhausted_waits = a.waits > MAX_WAITS_PER_REQUEST;
                let abandon = (give_up && !matches!(err, AttemptError::Shed { .. }))
                    || exhausted_waits
                    || next_at > deadline;
                if abandon {
                    finish_request(&mut clients[ci], &mut report, false, t_done, obs);
                    push(&mut heap, &mut seq, t_done.saturating_add(think), ci);
                } else {
                    push(&mut heap, &mut seq, next_at, ci);
                }
            }
        }
        now = now.max(t_done);
    }

    // Fold per-client and server stats into the report.
    for c in &clients {
        if c.done < cfg.requests_per_client {
            report.stuck_clients += 1;
        }
    }
    fold_runtime_stats(&mut report, &clients, &server);
    report.virtual_duration = now;
    report.names_requested = requested.len() as u64;
    report.names_delivered = delivered_names.len() as u64;
    report.permanently_corrupt = corrupt_names.iter().cloned().collect();
    report.undelivered = requested
        .iter()
        .filter(|n| !delivered_names.contains(*n) && !corrupt_names.contains(*n))
        .cloned()
        .collect();
    // One closing stream line so the series always ends on the final
    // totals, even when the run ends mid-interval.
    if obs.metrics_interval.is_some() {
        obs.emit_sample(now, &report, &clients, &server, now);
    }
    report
}

/// Folds the live client/server-held stats into `report` by
/// assignment (not accumulation), so mid-run metric sampling can call
/// it repeatedly on a clone of the partial report.
fn fold_runtime_stats(report: &mut SoakReport, clients: &[SimClient], server: &ModuleServer) {
    report.quarantines = 0;
    report.quarantine_recoveries = 0;
    report.quarantined_end = 0;
    report.breaker_opens = 0;
    report.breaker_half_opens = 0;
    report.breaker_recoveries = 0;
    report.breaker_rejects = 0;
    for c in clients {
        let s = c.fetch.stats();
        report.quarantines += s.quarantines;
        report.quarantine_recoveries += s.recoveries;
        report.quarantined_end += c.fetch.quarantine_len() as u64;
        let (opens, half_opens, recoveries, rejects) = c.fetch.breaker_totals();
        report.breaker_opens += opens;
        report.breaker_half_opens += half_opens;
        report.breaker_recoveries += recoveries;
        report.breaker_rejects += rejects;
    }
    // Real-admission sheds (ss.shed) already reached clients as shed
    // verdicts and were counted there; don't double-count them here.
    let ss = server.stats();
    report.cache_hits = ss.cache_hits;
    report.cache_misses = ss.cache_misses;
    report.cache_evictions = ss.evictions;
    report.raw_fallbacks = ss.raw_fallbacks;
    report.peak_cache_bytes = ss.peak_cache_bytes;
}

fn finish_request(
    c: &mut SimClient,
    report: &mut SoakReport,
    delivered: bool,
    end: Nanos,
    obs: &mut SoakObserver,
) {
    if !delivered {
        report.failed += 1;
    }
    let a = c.active.take().expect("finished request was active");
    obs.latency.record(end.saturating_sub(a.started));
    obs.span(
        SPAN_REQUEST,
        a.request_id,
        0,
        c.fetch.id(),
        a.started,
        end,
        if delivered { "delivered" } else { "failed" },
    );
    c.done += 1;
}

fn think_gap(mean: Nanos, rng: &mut XorShift64) -> Nanos {
    let mean = mean.max(2);
    mean / 2 + rng.below(mean)
}

/// Permanently corrupts `count` units of `image` (deterministic in
/// `seed`), returning the rebuilt image and the names corrupted.
/// Useful for soak scenarios exercising the source-corrupt path.
///
/// # Panics
///
/// Panics if `image` round-trips to bytes that no longer parse, which
/// would be a wire-format bug.
#[must_use]
pub fn corrupt_units(image: &DemandImage, count: usize, seed: u64) -> (DemandImage, Vec<String>) {
    let names: Vec<String> = image.names().map(str::to_string).collect();
    if names.is_empty() || count == 0 {
        return (image.clone(), Vec::new());
    }
    let mut rng = XorShift64::new(seed | 1);
    let mut doomed = BTreeSet::new();
    while doomed.len() < count.min(names.len()) {
        doomed.insert(names[rng.below(names.len() as u64) as usize].clone());
    }

    // The image framing is length-prefixed with no checksums, so
    // smashing bytes inside a unit's payload keeps the image parseable
    // while breaking that unit's decode. Locate each doomed unit's
    // payload in the serialized form and XOR its tail third.
    let mut bytes = image.to_bytes();
    for name in &doomed {
        let unit = image.unit_bytes(name).expect("doomed name exists");
        if let Some(pos) = find_subslice(&bytes, unit) {
            let start = pos + (unit.len() * 2) / 3;
            let end = pos + unit.len();
            for (i, b) in bytes[start..end].iter_mut().enumerate() {
                *b ^= 0xA5u8.wrapping_add(i as u8);
            }
        }
    }
    let rebuilt = DemandImage::from_bytes(&bytes).expect("corrupted image still parses");
    // Keep only names whose decode actually broke (XOR might — in
    // principle — still yield a valid unit).
    let corrupted: Vec<String> = doomed
        .iter()
        .filter(|n| rebuilt.load_function(n).is_err())
        .cloned()
        .collect();
    (rebuilt, corrupted)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Per-channel-kind summary convenience for CLI output.
#[must_use]
pub fn channel_mix(cfg: &SoakConfig) -> BTreeMap<&'static str, usize> {
    let mut mix = BTreeMap::new();
    if cfg.channels.is_empty() {
        mix.insert(ChannelKind::Lan.name(), cfg.clients);
        return mix;
    }
    for i in 0..cfg.clients {
        *mix.entry(cfg.channels[i % cfg.channels.len()].name()).or_insert(0) += 1;
    }
    mix
}
