//! Fault-tolerant demand-paging module server.
//!
//! The paper's delivery story ships compressed code over slow,
//! unreliable channels (28.8k modems, LANs, disks) and demand-loads a
//! function at a time. Everything below PR 8 ran in-process over
//! perfect byte slices; this crate is where the quarantine/retry
//! machinery finally meets the failure modes it exists for.
//!
//! The pieces:
//!
//! - [`channel`] — a fault-injecting byte transport. Transfer times
//!   come from [`codecomp_memsim::Channel`] bandwidth/latency models;
//!   faults (truncation, bit corruption, delay, timeout) are seeded
//!   and deterministic per `(seed, request, attempt)` via
//!   [`codecomp_core::fault::XorShift64`] and
//!   [`codecomp_core::fault::Mutation`].
//! - [`retry`] — deadline-aware exponential backoff with
//!   deterministic jitter. No wall-clock reads: all service time is
//!   virtual nanoseconds.
//! - [`breaker`] — a per-function circuit breaker (closed → open →
//!   half-open) that escalates PR 3's quarantine so a persistently
//!   corrupt unit stops consuming retries while transiently faulty
//!   ones recover.
//! - [`server`] — [`server::ModuleServer`]: a thread-safe function-unit
//!   server with a sharded verification cache (per-shard mutex,
//!   generation-stamped eviction in the `DescCache` discipline),
//!   per-client [`codecomp_core::limits::Budget`]s, bounded admission
//!   that sheds load with an explicit retry-after verdict, and raw-bytes
//!   fallback under memory pressure.
//! - [`client`] — [`client::FetchClient`]: quarantine + breaker + decode
//!   bookkeeping for one simulated client.
//! - [`soak`] — a discrete-event soak harness driving N clients over
//!   the three paper channel models at configurable fault rates,
//!   asserting survival (no panics, no stuck requests, bounded memory,
//!   eventual delivery) and publishing `serve.*` telemetry.
//!
//! Time is virtual everywhere ([`Nanos`], u64 nanoseconds) so every
//! test and the soak harness are bit-deterministic in their seed.

pub mod breaker;
pub mod channel;
pub mod client;
pub mod retry;
pub mod server;
pub mod soak;

/// Virtual time in nanoseconds. The soak harness and all policies use
/// virtual time so tests never read the wall clock.
pub type Nanos = u64;

/// One virtual second.
pub const SECOND: Nanos = 1_000_000_000;

/// One virtual millisecond.
pub const MILLI: Nanos = 1_000_000;

/// Converts a seconds figure from `memsim` into virtual nanoseconds,
/// saturating on overflow and never rounding a positive duration to 0.
#[must_use]
pub fn secs_to_nanos(secs: f64) -> Nanos {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let n = secs * 1e9;
    if n >= u64::MAX as f64 {
        u64::MAX
    } else {
        (n as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_to_nanos_boundaries() {
        assert_eq!(secs_to_nanos(0.0), 0);
        assert_eq!(secs_to_nanos(-1.0), 0);
        assert_eq!(secs_to_nanos(f64::NAN), 0);
        assert_eq!(secs_to_nanos(1.0), SECOND);
        assert_eq!(secs_to_nanos(1e-12), 1, "positive time never rounds to 0");
        assert_eq!(secs_to_nanos(1e30), u64::MAX);
    }
}
