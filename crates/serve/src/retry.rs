//! Deadline-aware retry with exponential backoff and deterministic
//! jitter.
//!
//! Backoff is "equal jitter": the exponential term is halved and the
//! other half drawn uniformly from a seeded [`XorShift64`], so retries
//! from a fleet of clients decorrelate without any wall-clock or OS
//! entropy read — same seed, same schedule, forever.

use codecomp_core::fault::XorShift64;

use crate::{Nanos, MILLI, SECOND};

/// Tunables for the per-request retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total delivery attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Nanos,
    /// Exponential growth factor per further attempt.
    pub multiplier: u32,
    /// Backoff ceiling.
    pub max_backoff: Nanos,
    /// Overall per-request deadline, relative to the first attempt.
    /// A retry that cannot start before the deadline is abandoned.
    pub deadline: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: 20 * MILLI,
            multiplier: 2,
            max_backoff: 5 * SECOND,
            deadline: 120 * SECOND,
        }
    }
}

impl RetryPolicy {
    /// Backoff to wait after attempt number `attempt` (1-based) fails.
    /// Equal jitter: `cap/2 + uniform(0 ..= cap/2)` where `cap` is the
    /// clamped exponential term.
    #[must_use]
    pub fn backoff(&self, attempt: u32, rng: &mut XorShift64) -> Nanos {
        let mut cap = self.base_backoff.max(1);
        let mult = u64::from(self.multiplier.max(1));
        for _ in 1..attempt {
            cap = cap.saturating_mul(mult);
            if cap >= self.max_backoff {
                break;
            }
        }
        cap = cap.min(self.max_backoff.max(1));
        let half = cap / 2;
        half + rng.below(half + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: 1_000,
            multiplier: 2,
            max_backoff: 8_000,
            deadline: 1_000_000,
        }
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bands() {
        let p = policy();
        let mut rng = XorShift64::new(7);
        for attempt in 1..=8 {
            let cap = (1_000u64 << (attempt - 1)).min(8_000);
            for _ in 0..100 {
                let b = p.backoff(attempt, &mut rng);
                assert!(b >= cap / 2 && b <= cap, "attempt {attempt}: {b} outside [{}, {cap}]", cap / 2);
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_in_seed() {
        let p = policy();
        let series = |seed| {
            let mut rng = XorShift64::new(seed);
            (1..=6).map(|a| p.backoff(a, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(series(42), series(42));
        assert_ne!(series(42), series(43), "different seeds jitter differently");
    }

    #[test]
    fn degenerate_policy_values_are_safe() {
        let p = RetryPolicy {
            max_attempts: 1,
            base_backoff: 0,
            multiplier: 0,
            max_backoff: 0,
            deadline: 0,
        };
        let mut rng = XorShift64::new(1);
        // Must not panic or loop; zero-ish backoff is fine.
        assert!(p.backoff(1, &mut rng) <= 1);
        assert!(p.backoff(30, &mut rng) <= 1);
    }
}
