//! # Code Compression
//!
//! A from-scratch Rust reproduction of *Code Compression* (Ernst, Evans,
//! Fraser, Lucco, Proebsting; PLDI 1997): two compressed executable
//! representations and every substrate they depend on.
//!
//! - The **wire format** ([`wire`]): patternized tree code split into an
//!   operator stream and per-operator literal streams, each MTF-coded,
//!   Huffman-coded, and DEFLATEd in isolation. Dense, but linear to
//!   decompress.
//! - **BRISC** ([`brisc`]): a byte-coded RISC built by greedy operand
//!   specialization and opcode combination over an OmniVM-style register
//!   machine, with an order-1 Markov opcode assignment. Slightly larger
//!   than the wire format, but randomly addressable: it can be
//!   interpreted *in place* or translated to native code in one linear
//!   pass.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`coding`] | `codecomp-coding` | bit I/O, Huffman, MTF, arithmetic coding, context models |
//! | [`flate`] | `codecomp-flate` | DEFLATE + gzip, from scratch |
//! | [`ir`] | `codecomp-ir` | lcc-style tree IR, text/binary forms, reference evaluator |
//! | [`front`] | `codecomp-front` | mini-C compiler producing the IR |
//! | [`vm`] | `codecomp-vm` | OmniVM-style register RISC: codegen, interpreter, native-size encoders |
//! | [`core`] | `codecomp-core` | patternization, stream separation, greedy dictionary selection |
//! | [`wire`] | `codecomp-wire` | the wire-format compressor/decompressor |
//! | [`brisc`] | `codecomp-brisc` | the BRISC compressor, in-place interpreter, fast translator |
//! | [`memsim`] | `codecomp-memsim` | delivery-time and paging cost models |
//! | [`serve`] | `codecomp-serve` | fault-tolerant demand-paging module server + soak harness |
//! | [`corpus`] | `codecomp-corpus` | benchmark programs and a synthetic program generator |
//!
//! ## Quickstart
//!
//! ```
//! use code_compression::front::compile;
//! use code_compression::vm::codegen::compile_module;
//! use code_compression::vm::isa::IsaConfig;
//! use code_compression::brisc::{compress, BriscOptions};
//! use code_compression::brisc::interp::BriscMachine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ir = compile("int main() { int s = 0; int i; for (i = 1; i <= 4; i++) s += i; return s; }")?;
//! let vm = compile_module(&ir, IsaConfig::full())?;
//! let brisc = compress(&vm, BriscOptions::default())?;
//! let mut machine = BriscMachine::new(&brisc.image, 1 << 20, 1 << 24)?;
//! assert_eq!(machine.run("main", &[])?.value, 10);
//! # Ok(())
//! # }
//! ```

pub use codecomp_brisc as brisc;
pub use codecomp_coding as coding;
pub use codecomp_core as core;
pub use codecomp_corpus as corpus;
pub use codecomp_flate as flate;
pub use codecomp_front as front;
pub use codecomp_ir as ir;
pub use codecomp_memsim as memsim;
pub use codecomp_serve as serve;
pub use codecomp_vm as vm;
pub use codecomp_wire as wire;
