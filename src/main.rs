//! `codecomp` — the command-line face of the code-compression toolkit.
//!
//! ```text
//! codecomp compile <src.c> [-o out.ccir]     compile mini-C to binary IR
//! codecomp dis <src.c|.ccir>                 show the OmniVM assembly
//! codecomp run <file> [--tier T] [-- args]   execute (ir|vm|brisc|jit)
//! codecomp wire pack <src.c|.ccir> [-o F]    produce a wire image (.ccwf)
//! codecomp wire unpack <in.ccwf> [-o F]      recover the binary IR
//! codecomp wire info <in.ccwf>               per-section byte accounting
//! codecomp brisc pack <src.c|.ccir> [-o F]   produce a BRISC image (.ccbr)
//! codecomp brisc run <in.ccbr> [-- args]     interpret the image in place
//! codecomp brisc info <in.ccbr>              dictionary / model statistics
//! codecomp fuzz [--target T] [--cases N]     coverage-guided fuzzing campaign
//! codecomp profile <subcommand...>           collapsed-stack self-profile of a command
//! codecomp serve-sim [--clients N] [...]     demand-paging server soak simulation
//! ```

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::translate::translate;
use code_compression::brisc::{compress as brisc_compress, BriscImage, BriscOptions};
use code_compression::core::fuzz::{
    default_dictionary, run_blind_schedule, run_campaign, union_edges, CampaignReport, FindingKind,
    FuzzConfig, Verdict,
};
use code_compression::core::{coverage, Budget, DecodeLimits};
use code_compression::corpus::{benchmarks, synthetic_modules, Benchmark, MultiModuleConfig};
use code_compression::flate::{gzip_compress, gzip_decompress_budgeted, CompressionLevel};
use code_compression::front::compile;
use code_compression::ir::binary::{decode_module, encode_module};
use code_compression::ir::eval::Evaluator;
use code_compression::ir::Module;
use code_compression::core::profile;
use code_compression::core::telemetry::reconcile::reconcile;
use code_compression::serve::soak::{
    channel_mix, corrupt_units, run_soak_observed, ChannelKind, SoakConfig, SoakObserver,
};
use code_compression::serve::MILLI;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::interp::Machine;
use code_compression::vm::isa::IsaConfig;
use code_compression::core::telemetry;
use code_compression::wire::{
    compress as wire_compress, decompress, decompress_budgeted, DemandImage, WireOptions,
};
use std::process::ExitCode;
use std::sync::Arc;

const MEM: u32 = 1 << 24;
const FUEL: u64 = 1 << 40;

/// Stdout handle that treats a closed pipe as success, so info
/// commands piped into `head` exit cleanly instead of panicking with
/// "failed printing to stdout: Broken pipe". Any other I/O error still
/// surfaces.
struct PipeSafeStdout;

impl std::io::Write for PipeSafeStdout {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match std::io::stdout().write(buf) {
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(buf.len()),
            other => other,
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match std::io::stdout().flush() {
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
            other => other,
        }
    }
}

/// `print!` to [`PipeSafeStdout`]; propagates non-pipe I/O errors.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        write!(PipeSafeStdout, $($arg)*)
    }};
}

/// `println!` to [`PipeSafeStdout`]; propagates non-pipe I/O errors.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        writeln!(PipeSafeStdout, $($arg)*)
    }};
}

/// Telemetry surfacing requested on the command line.
struct TelemetryFlags {
    /// `--stats`: print the per-stage stream breakdown table.
    stats: bool,
    /// `--metrics` (stdout) or `--metrics=PATH` (file): registry dump.
    metrics: Option<Option<String>>,
    /// `--trace=PATH`: structured JSON-lines trace.
    trace: Option<String>,
}

impl TelemetryFlags {
    fn any(&self) -> bool {
        self.stats || self.metrics.is_some() || self.trace.is_some()
    }
}

/// Strips the global telemetry flags out of `args` (they are accepted
/// anywhere before `--`) and returns what they asked for.
fn extract_telemetry(args: &mut Vec<String>) -> Result<TelemetryFlags, AnyError> {
    let mut t = TelemetryFlags {
        stats: false,
        metrics: None,
        trace: None,
    };
    let mut kept = Vec::new();
    let mut it = std::mem::take(args).into_iter();
    while let Some(a) = it.next() {
        if a == "--stats" {
            t.stats = true;
        } else if a == "--metrics" {
            t.metrics = Some(None);
        } else if let Some(p) = a.strip_prefix("--metrics=") {
            t.metrics = Some(Some(p.to_string()));
        } else if a == "--trace" {
            t.trace = Some(it.next().ok_or("--trace needs a path")?);
        } else if let Some(p) = a.strip_prefix("--trace=") {
            t.trace = Some(p.to_string());
        } else if a == "--" {
            kept.push(a);
            kept.extend(it);
            break;
        } else {
            kept.push(a);
        }
    }
    *args = kept;
    Ok(t)
}

/// Installs the process-wide collector the flags ask for.
fn install_telemetry(t: &TelemetryFlags) -> Result<(), AnyError> {
    if !t.any() {
        return Ok(());
    }
    let collector = match &t.trace {
        Some(path) => {
            let sink = telemetry::JsonLinesSink::create(path)
                .map_err(|e| format!("--trace: cannot open {path:?}: {e}"))?;
            telemetry::Collector::with_trace(Arc::new(sink))
        }
        None => telemetry::Collector::metrics_only(),
    };
    telemetry::install(collector);
    Ok(())
}

/// Emits whatever the telemetry flags asked for after the command ran.
fn report_telemetry(t: &TelemetryFlags) -> Result<(), AnyError> {
    let Some(collector) = telemetry::collector() else {
        return Ok(());
    };
    let snap = collector.metrics.snapshot();
    if t.stats {
        print_stats(&snap);
    }
    match &t.metrics {
        Some(Some(path)) => {
            std::fs::write(path, snap.to_json() + "\n")?;
            eprintln!("wrote metrics: {path}");
        }
        Some(None) => outln!("{}", snap.to_json())?,
        None => {}
    }
    Ok(())
}

/// The `--stats` table: the paper's per-stream byte breakdown, read
/// back from the wire encoder's (and, after an unpack, the decoder's)
/// reset-and-set gauges. The rows sum exactly to the wire-module size.
fn print_stats(snap: &telemetry::Snapshot) {
    let encoded = print_stream_table(snap, "encode");
    let decoded = print_stream_table(snap, "decode");
    if !encoded && !decoded {
        eprintln!("per-stage stream breakdown:");
        eprintln!("  (no wire activity in this run)");
    }
    print_stage_counters(snap);
}

/// One direction of the stream table (`dir` is `"encode"` or
/// `"decode"`); returns whether any rows existed.
fn print_stream_table(snap: &telemetry::Snapshot, dir: &str) -> bool {
    let prefix = format!("wire.{dir}.section_bytes.");
    let mut sum = 0u64;
    let mut rows = Vec::new();
    for (name, bytes) in &snap.gauges {
        if *bytes == 0 {
            continue; // zeroed leftovers from an earlier module
        }
        if let Some(key) = name.strip_prefix(&prefix) {
            let symbols = snap.gauge(&format!("wire.{dir}.section_symbols.{key}"));
            rows.push((key.to_string(), *bytes, symbols));
            sum += bytes;
        }
    }
    if rows.is_empty() {
        return false;
    }
    eprintln!("per-stage stream breakdown ({dir}):");
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    eprintln!("  {:>12} {:>10} {:>10}", "stream", "bytes", "symbols");
    for (key, bytes, symbols) in &rows {
        match symbols {
            Some(s) => eprintln!("  {key:>12} {bytes:>10} {s:>10}"),
            None => eprintln!("  {key:>12} {bytes:>10} {:>10}", "-"),
        }
    }
    let container = snap
        .gauge(&format!("wire.{dir}.container_bytes"))
        .unwrap_or(0);
    sum += container;
    eprintln!("  {:>12} {container:>10}", "container");
    eprintln!("  {:>12} {sum:>10}", "total");
    if let Some(total) = snap.gauge(&format!("wire.{dir}.total_bytes")) {
        if total != sum {
            eprintln!("  WARNING: section sum {sum} != {dir} total {total}");
        }
    }
    true
}

/// Compact per-stage counter summary below the stream table.
fn print_stage_counters(snap: &telemetry::Snapshot) {
    let interesting = [
        "front.tokens",
        "front.decls",
        "ir.nodes.arith",
        "vm.codegen.instrs",
        "coding.huffman.bits_emitted",
        "coding.mtf.hits",
        "coding.mtf.misses",
        "flate.inflate.output_bytes",
        "flate.deflate.input_bytes",
        "wire.encode.symbols",
        "wire.decode.symbols",
        "coding.huffman.table_cache.hits",
        "coding.huffman.table_cache.misses",
        "coding.huffman.table_cache.evictions",
        "flate.inflate.table_cache.hits",
        "flate.inflate.table_cache.misses",
        "flate.inflate.table_cache.evictions",
        "wire.patterns.table_cache.hits",
        "wire.patterns.table_cache.misses",
        "wire.patterns.table_cache.evictions",
        "brisc.interp.dispatches",
        "brisc.interp.fuel_consumed",
        "serve.requests",
        "serve.delivered",
        "serve.failed",
        "serve.retries",
        "serve.shed",
        "serve.timeouts",
        "serve.corrupt_deliveries",
        "serve.source_corrupt",
        "serve.breaker.opens",
        "serve.breaker.rejects",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.cache.evictions",
        "serve.raw_fallbacks",
        "serve.channel.faults",
    ];
    let mut any = false;
    for name in interesting {
        if let Some(v) = snap.counter(name) {
            if !any {
                eprintln!("stage counters:");
                any = true;
            }
            eprintln!("  {name:>28}: {v}");
        }
    }
}

/// Flushes the buffered `--trace=PATH` writer on every exit path —
/// normal return, `?`-error unwinding out of `dispatch`, and panics
/// (the binary unwinds) — so truncated runs still leave a parseable
/// JSON-lines trace. The global collector is a `'static` that is never
/// dropped; without this guard a buffered tail would simply be lost.
struct TraceFlushGuard;

impl Drop for TraceFlushGuard {
    fn drop(&mut self) {
        telemetry::flush_trace();
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut run = || -> Result<ExitCode, AnyError> {
        let tflags = extract_telemetry(&mut args)?;
        install_telemetry(&tflags)?;
        let _flush = TraceFlushGuard;
        let code = dispatch(&args)?;
        report_telemetry(&tflags)?;
        Ok(code)
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("codecomp: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn dispatch(args: &[String]) -> Result<ExitCode, AnyError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("compile") => cmd_compile(&args[1..]),
        Some("dis") => cmd_dis(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("wire") => match it.next() {
            Some("pack") => cmd_wire_pack(&args[2..]),
            Some("unpack") => cmd_wire_unpack(&args[2..]),
            Some("info") => cmd_wire_info(&args[2..]),
            _ => usage(),
        },
        Some("brisc") => match it.next() {
            Some("pack") => cmd_brisc_pack(&args[2..]),
            Some("run") => cmd_brisc_run(&args[2..]),
            Some("info") => cmd_brisc_info(&args[2..]),
            _ => usage(),
        },
        Some("telemetry") => match it.next() {
            Some("check") => cmd_telemetry_check(&args[2..]),
            _ => usage(),
        },
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("serve-sim") => cmd_serve_sim(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => usage(),
        Some(other) => Err(format!("unknown command {other:?} (try `codecomp help`)").into()),
    }
}

fn usage() -> Result<ExitCode, AnyError> {
    eprintln!(
        "usage:
  codecomp compile <src.c> [-o out.ccir]
  codecomp dis <src.c|.ccir>
  codecomp run <src.c|.ccir|.ccwf|.ccbr> [--tier ir|vm|brisc|jit]
               [--fuel N] [--max-output N] [--max-resident N] [-- args...]
  codecomp wire pack <src.c|.ccir> [-o out.ccwf]
  codecomp wire unpack <in.ccwf> [-o out.ccir]
  codecomp wire info <in.ccwf>
  codecomp brisc pack <src.c|.ccir> [-o out.ccbr]
  codecomp brisc run <in.ccbr> [--fuel N] [--max-output N] [-- args...]
  codecomp brisc info <in.ccbr>
  codecomp telemetry check [--trace|--stream|--collapsed] <file.jsonl>...
  codecomp fuzz [--target wire|gzip|demand|brisc|all] [--cases N] [--seed N]
                [--rounds N] [--blind] [--max-input N] [--save-repros]
  codecomp profile [--out PATH] [--passes N] [--period NANOS] <subcommand...>
                   (needs a `--features profile` build)
  codecomp serve-sim [<src.c|.ccir>] [--clients N] [--requests N] [--seed N]
                     [--fault-rate N|N/D] [--corrupt N] [--workers N]
                     [--cache SIZE] [--channels modem,lan,disk]
                     [--metrics-interval MS] [--metrics-stream PATH]

global telemetry flags (any command, before `--`):
  --stats              per-stage stream breakdown table (stderr)
  --metrics[=PATH]     metrics-registry JSON dump (stdout, or PATH)
  --trace=PATH         structured JSON-lines trace

sizes accept k/m/g suffixes: --fuel 64k, --max-output 1m, --max-resident 2g"
    );
    Ok(ExitCode::FAILURE)
}

/// Parses a size with an optional `k`/`m`/`g` suffix (`64k`, `1m`, `2g`).
fn parse_size(flag: &str, s: &str) -> Result<u64, AnyError> {
    let (digits, mult) = match s.char_indices().last() {
        Some((i, c)) if c.is_ascii_alphabetic() => {
            let mult: u64 = match c.to_ascii_lowercase() {
                'k' => 1 << 10,
                'm' => 1 << 20,
                'g' => 1 << 30,
                _ => return Err(format!("{flag}: unknown size suffix {c:?} (use k/m/g)").into()),
            };
            (&s[..i], mult)
        }
        _ => (s, 1),
    };
    let n = digits
        .parse::<u64>()
        .map_err(|_| format!("{flag} expects a size like 500, 64k, 1m or 2g, got {s:?}"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("{flag}: size {s:?} overflows").into())
}

/// Splits `args` into (positional, -o value, --tier value, trailing args).
struct Parsed<'a> {
    positional: Vec<&'a str>,
    output: Option<&'a str>,
    tier: Option<&'a str>,
    fuel: Option<u64>,
    max_output: Option<u64>,
    max_resident: Option<u64>,
    trailing: Vec<i64>,
}

impl Parsed<'_> {
    /// The decode limits the command line asked for (defaults elsewhere).
    fn decode_limits(&self) -> DecodeLimits {
        let mut limits = DecodeLimits::default();
        if let Some(o) = self.max_output {
            limits.max_output_bytes = o;
        }
        if let Some(r) = self.max_resident {
            limits.max_resident_bytes = r;
        }
        limits
    }
}

fn parse(args: &[String]) -> Result<Parsed<'_>, AnyError> {
    let mut p = Parsed {
        positional: Vec::new(),
        output: None,
        tier: None,
        fuel: None,
        max_output: None,
        max_resident: None,
        trailing: Vec::new(),
    };
    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(a) = it.next() {
        match a {
            "-o" => p.output = Some(it.next().ok_or("-o needs a path")?),
            "--tier" => p.tier = Some(it.next().ok_or("--tier needs a value")?),
            "--fuel" => {
                let v = it.next().ok_or("--fuel needs a value")?;
                p.fuel = Some(parse_size("--fuel", v)?);
            }
            "--max-output" => {
                let v = it.next().ok_or("--max-output needs a value")?;
                p.max_output = Some(parse_size("--max-output", v)?);
            }
            "--max-resident" => {
                let v = it.next().ok_or("--max-resident needs a value")?;
                p.max_resident = Some(parse_size("--max-resident", v)?);
            }
            "--" => {
                for t in it.by_ref() {
                    p.trailing.push(
                        t.parse::<i64>().map_err(|_| {
                            format!("program arguments must be integers, got {t:?}")
                        })?,
                    );
                }
            }
            other => p.positional.push(other),
        }
    }
    Ok(p)
}

/// Loads a module from a `.c` source or `.ccir` binary file.
fn load_module(path: &str) -> Result<Module, AnyError> {
    if path.ends_with(".ccir") {
        let bytes = std::fs::read(path)?;
        return Ok(decode_module(&bytes)?);
    }
    let source = std::fs::read_to_string(path)?;
    Ok(compile(&source)?)
}

fn write_output(path: &str, bytes: &[u8], kind: &str) -> Result<(), AnyError> {
    std::fs::write(path, bytes)?;
    outln!("wrote {kind}: {path} ({} bytes)", bytes.len())?;
    Ok(())
}

fn replace_ext(path: &str, ext: &str) -> String {
    let stem = path.rsplit_once('.').map_or(path, |(s, _)| s);
    format!("{stem}.{ext}")
}

fn cmd_compile(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let module = load_module(input)?;
    let bytes = encode_module(&module)?;
    let out = p
        .output
        .map(str::to_string)
        .unwrap_or_else(|| replace_ext(input, "ccir"));
    write_output(&out, &bytes, "binary IR")?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_dis(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let module = load_module(input)?;
    let vm = compile_module(&module, IsaConfig::full())?;
    // Tolerate a closed pipe (`codecomp dis … | head`).
    out!("{vm}")?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let tier = p.tier.unwrap_or("vm");

    // Compressed images run directly, under the requested decode limits.
    let fuel = p.fuel.unwrap_or(FUEL);
    let limits = p.decode_limits();
    if input.ends_with(".ccbr") {
        return run_brisc_image(input, &p.trailing, fuel, limits);
    }
    if input.ends_with(".ccwf") {
        let bytes = std::fs::read(input)?;
        let budget = Budget::new(limits);
        let module = decompress_budgeted(&bytes, &budget)?;
        budget.publish_telemetry();
        return finish(run_module(&module, tier, &p.trailing, fuel)?);
    }
    let module = load_module(input)?;
    finish(run_module(&module, tier, &p.trailing, fuel)?)
}

/// Runs a module under the requested tier; returns (value, output).
fn run_module(module: &Module, tier: &str, args: &[i64], fuel: u64) -> Result<(i64, Vec<u8>), AnyError> {
    match tier {
        "ir" => {
            let out = Evaluator::new(module, MEM, fuel)?.run("main", args)?;
            Ok((out.value, out.output))
        }
        "vm" => {
            let vm = compile_module(module, IsaConfig::full())?;
            let out = Machine::new(&vm, MEM, fuel)?.run("main", args)?;
            Ok((out.value, out.output))
        }
        "brisc" => {
            let vm = compile_module(module, IsaConfig::full())?;
            let report = brisc_compress(&vm, BriscOptions::default())?;
            let out = BriscMachine::new(&report.image, MEM, fuel)?.run("main", args)?;
            Ok((out.value, out.output))
        }
        "jit" => {
            let vm = compile_module(module, IsaConfig::full())?;
            let report = brisc_compress(&vm, BriscOptions::default())?;
            let fast = translate(&report.image)?;
            let out = Machine::new(&fast, MEM, fuel)?.run("main", args)?;
            Ok((out.value, out.output))
        }
        other => Err(format!("unknown tier {other:?} (ir|vm|brisc|jit)").into()),
    }
}

fn finish((value, output): (i64, Vec<u8>)) -> Result<ExitCode, AnyError> {
    out!("{}", String::from_utf8_lossy(&output))?;
    outln!("=> {value}")?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_wire_pack(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let module = load_module(input)?;
    let packed = wire_compress(&module, WireOptions::default())?;
    let raw = encode_module(&module)?;
    let out = p
        .output
        .map(str::to_string)
        .unwrap_or_else(|| replace_ext(input, "ccwf"));
    write_output(&out, &packed.bytes, "wire image")?;
    outln!(
        "uncompressed tree code: {} bytes ({:.2}x)",
        raw.len(),
        raw.len() as f64 / packed.total() as f64
    )?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_wire_unpack(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let bytes = std::fs::read(input)?;
    let module = decompress(&bytes)?;
    let out = p
        .output
        .map(str::to_string)
        .unwrap_or_else(|| replace_ext(input, "ccir"));
    write_output(&out, &encode_module(&module)?, "binary IR")?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_wire_info(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let bytes = std::fs::read(input)?;
    let module = decompress(&bytes)?;
    // Re-compress to recover the section accounting.
    let packed = wire_compress(&module, WireOptions::default())?;
    outln!(
        "wire image: {} bytes, {} functions",
        packed.total(),
        module.functions.len()
    )?;
    for (key, size) in &packed.sections {
        outln!("  {key:>12}: {size} bytes")?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_brisc_pack(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let module = load_module(input)?;
    let vm = compile_module(&module, IsaConfig::full())?;
    let report = brisc_compress(&vm, BriscOptions::default())?;
    let out = p
        .output
        .map(str::to_string)
        .unwrap_or_else(|| replace_ext(input, "ccbr"));
    write_output(&out, &report.image.to_bytes(), "brisc image")?;
    outln!(
        "code: {} bytes from {} VM bytes; dictionary {} entries ({} passes)",
        report.image.code_size(),
        report.input_bytes,
        report.dictionary_entries,
        report.passes
    )?;
    Ok(ExitCode::SUCCESS)
}

fn run_brisc_image(
    path: &str,
    args: &[i64],
    fuel: u64,
    limits: DecodeLimits,
) -> Result<ExitCode, AnyError> {
    let bytes = std::fs::read(path)?;
    let budget = Budget::new(limits);
    let image = BriscImage::from_bytes_budgeted(&bytes, &budget)?;
    budget.publish_telemetry();
    // The governed machine quarantines functions that fail the load
    // scan; execution only fails if it actually reaches one.
    let mut machine = BriscMachine::new_governed(&image, MEM, fuel, limits)?;
    for (name, cause) in machine.quarantined_functions() {
        eprintln!("codecomp: warning: function {name} quarantined: {cause}");
    }
    let out = machine.run("main", args)?;
    out!("{}", String::from_utf8_lossy(&out.output))?;
    outln!("=> {}", out.value)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_brisc_run(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    run_brisc_image(input, &p.trailing, p.fuel.unwrap_or(FUEL), p.decode_limits())
}

fn cmd_telemetry_check(args: &[String]) -> Result<ExitCode, AnyError> {
    // Three line schemas share this checker: trace events (default),
    // delta-encoded metric streams, and collapsed profiler stacks.
    let mut kind = "trace";
    let mut inputs = Vec::new();
    for a in args {
        match a.as_str() {
            "--trace" => kind = "trace",
            "--stream" => kind = "stream",
            "--collapsed" => kind = "collapsed",
            other if other.starts_with('-') => {
                return Err(format!("telemetry check: unknown flag {other:?}").into());
            }
            other => inputs.push(other),
        }
    }
    if inputs.is_empty() {
        return usage();
    }
    let validate: fn(&str) -> Result<(), String> = match kind {
        "stream" => telemetry::stream::validate_stream_line,
        "collapsed" => profile::validate_collapsed_line,
        _ => telemetry::validate_trace_line,
    };
    for input in &inputs {
        let text = std::fs::read_to_string(input)?;
        let mut checked = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            validate(line).map_err(|e| format!("{input}:{}: {e}", i + 1))?;
            checked += 1;
        }
        outln!("{input}: {checked} {kind} lines ok")?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `codecomp profile <subcommand...>`: runs the subcommand under the
/// in-tree sampling self-profiler and writes its collapsed-stack
/// profile. Requires a build with `--features profile`; in a normal
/// build the instrumentation is compiled out and there is nothing to
/// sample.
fn cmd_profile(args: &[String]) -> Result<ExitCode, AnyError> {
    let mut out_path = "profile.folded".to_string();
    let mut passes: u64 = 1;
    let mut period: u64 = 10_000;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().ok_or("--out needs a path")?.clone(),
            "--passes" => {
                let v = it.next().ok_or("--passes needs a value")?;
                passes = parse_size("--passes", v)?.max(1);
            }
            "--period" => {
                let v = it.next().ok_or("--period needs a value")?;
                period = parse_size("--period", v)?;
            }
            other => {
                rest.push(other.to_string());
                rest.extend(it.by_ref().cloned());
            }
        }
    }
    if rest.is_empty() {
        return usage();
    }
    if rest[0] == "profile" {
        return Err("profile: cannot profile itself".into());
    }
    if !profile::enabled() {
        return Err(
            "profile: this build carries no profiler instrumentation \
             (rebuild with `cargo build --release --features profile`)"
                .into(),
        );
    }
    profile::set_wall_period_nanos(period.max(1));
    profile::reset();
    // The root frame names the profiled subcommand, so multi-command
    // sessions stay distinguishable in the merged flamegraph.
    let root: &'static str = Box::leak(format!("cmd.{}", rest[0]).into_boxed_str());
    let mut code = ExitCode::SUCCESS;
    for _ in 0..passes {
        let _root = profile::scope(root);
        code = dispatch(&rest)?;
    }
    let rendered = profile::render_collapsed();
    let samples: u64 = profile::collapsed().iter().map(|&(_, n)| n).sum();
    std::fs::write(&out_path, &rendered)?;
    outln!(
        "wrote profile: {out_path} ({} stacks, {samples} samples, {passes} pass(es), period {period} ns)",
        rendered.lines().count(),
    )?;
    Ok(code)
}

fn cmd_brisc_info(args: &[String]) -> Result<ExitCode, AnyError> {
    let p = parse(args)?;
    let [input] = p.positional[..] else {
        return usage();
    };
    let bytes = std::fs::read(input)?;
    let image = BriscImage::from_bytes(&bytes)?;
    outln!(
        "brisc image: {} bytes total, {} code bytes",
        bytes.len(),
        image.code_size()
    )?;
    outln!(
        "dictionary: {} entries; markov: {} contexts, max {} successors; order-{}",
        image.dictionary.len(),
        image.markov.context_count(),
        image.markov.max_successors(),
        if image.order0 { 0 } else { 1 },
    )?;
    outln!("functions:")?;
    for f in &image.functions {
        outln!(
            "  {:>16}: {} bytes at {:#06x}, frame {}, {} saved regs",
            f.name,
            f.len,
            f.start,
            f.frame_size,
            f.saved_regs.len()
        )?;
    }
    let combined = image.dictionary.iter().filter(|e| e.len() > 1).count();
    outln!("combined patterns: {combined}")?;
    Ok(ExitCode::SUCCESS)
}

/// A fuzz target: feeds one input to a decoder and classifies the result.
type FuzzTarget = Box<dyn FnMut(&[u8]) -> Verdict>;

/// Seed modules for the fuzz corpus: the two smallest benchmarks plus
/// one multi-module synthetic unit, so cross-module idioms (shared
/// preludes, deep expression spines) are represented in every seed set.
fn fuzz_seed_modules() -> Result<Vec<Module>, AnyError> {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    let mut modules: Vec<Module> = suite
        .iter()
        .take(2)
        .map(Benchmark::compile)
        .collect::<Result<_, _>>()?;
    let synth = synthetic_modules(
        7,
        MultiModuleConfig {
            modules: 1,
            shared_functions: 3,
            functions_per_module: 4,
            statements_per_function: 3,
            globals: 2,
            max_expr_depth: 3,
        },
    );
    modules.push(compile(&synth[0])?);
    Ok(modules)
}

/// Builds the seed corpus and run closure for one fuzz target.
fn fuzz_target(name: &str, limits: DecodeLimits) -> Result<(Vec<Vec<u8>>, FuzzTarget), AnyError> {
    let modules = fuzz_seed_modules()?;
    match name {
        "wire" => {
            let seeds = modules
                .iter()
                .map(|m| wire_compress(m, WireOptions::default()).map(|p| p.bytes))
                .collect::<Result<Vec<_>, _>>()?;
            let run: FuzzTarget = Box::new(move |bytes| {
                match decompress_budgeted(bytes, &Budget::new(limits)) {
                    Ok(_) => Verdict::Accept,
                    Err(_) => Verdict::Reject,
                }
            });
            Ok((seeds, run))
        }
        "gzip" => {
            let seeds = modules
                .iter()
                .map(|m| Ok(gzip_compress(&encode_module(m)?, CompressionLevel::Best)))
                .collect::<Result<Vec<_>, AnyError>>()?;
            let run: FuzzTarget = Box::new(move |bytes| {
                match gzip_decompress_budgeted(bytes, &Budget::new(limits)) {
                    Ok(out) if out.len() as u64 > limits.max_output_bytes => Verdict::Violation(
                        format!(
                            "gzip output {} bytes exceeds {}-byte ceiling",
                            out.len(),
                            limits.max_output_bytes
                        ),
                    ),
                    Ok(_) => Verdict::Accept,
                    Err(_) => Verdict::Reject,
                }
            });
            Ok((seeds, run))
        }
        "demand" => {
            let seeds = modules
                .iter()
                .map(|m| DemandImage::build(m, WireOptions::default()).map(|i| i.to_bytes()))
                .collect::<Result<Vec<_>, _>>()?;
            let run: FuzzTarget = Box::new(move |bytes| {
                let Ok(image) = DemandImage::from_bytes(bytes) else {
                    return Verdict::Reject;
                };
                match image.load_all_budgeted(&Budget::new(limits)) {
                    Ok(_) => Verdict::Accept,
                    Err(_) => Verdict::Reject,
                }
            });
            Ok((seeds, run))
        }
        "brisc" => {
            let seeds = modules
                .iter()
                .map(|m| -> Result<Vec<u8>, AnyError> {
                    let vm = compile_module(m, IsaConfig::full())?;
                    Ok(brisc_compress(&vm, BriscOptions::default())?.image.to_bytes())
                })
                .collect::<Result<Vec<_>, _>>()?;
            let run: FuzzTarget = Box::new(move |bytes| {
                let budget = Budget::new(limits);
                let Ok(image) = BriscImage::from_bytes_budgeted(bytes, &budget) else {
                    return Verdict::Reject;
                };
                // Execution under a small fuel budget: any run error on a
                // mutated image is acceptable, but it must not panic.
                match BriscMachine::new_governed(&image, 1 << 16, 1 << 14, limits) {
                    Ok(mut machine) => {
                        let _ = machine.run("main", &[]);
                        Verdict::Accept
                    }
                    Err(_) => Verdict::Reject,
                }
            });
            Ok((seeds, run))
        }
        other => Err(format!("fuzz: unknown target {other:?} (wire|gzip|demand|brisc|all)").into()),
    }
}

fn print_fuzz_report(name: &str, blind: bool, r: &CampaignReport) -> Result<(), AnyError> {
    outln!(
        "fuzz {name} ({}): {} cases, {} executions, {} unique edges, \
         corpus {} ({} kept for coverage), {} accept / {} reject, {} findings",
        if blind { "blind" } else { "guided" },
        r.cases,
        r.executions,
        r.unique_edges,
        r.corpus_size,
        r.coverage_inputs,
        r.accepts,
        r.rejects,
        r.findings.len()
    )?;
    for f in &r.findings {
        let what = match &f.kind {
            FindingKind::Panic(msg) => format!("panic: {msg}"),
            FindingKind::Violation(msg) => format!("limit violation: {msg}"),
        };
        outln!("  case {}: {what} ({} byte input)", f.case, f.input.len())?;
    }
    Ok(())
}

/// Persists finding inputs under `tests/regressions/` using the
/// `<target>__<verdict>__<name>.bin` convention the regression harness
/// replays. Findings are recorded as `total` — once the underlying bug
/// is fixed, the decoder must survive the input without panicking,
/// whatever Result it returns.
fn save_reproducers(target: &str, seed: u64, r: &CampaignReport) -> Result<(), AnyError> {
    if r.findings.is_empty() {
        return Ok(());
    }
    let dir = std::path::Path::new("tests/regressions");
    std::fs::create_dir_all(dir)?;
    for f in &r.findings {
        let path = dir.join(format!("{target}__total__seed{seed:x}-case{}.bin", f.case));
        std::fs::write(&path, &f.input)?;
        outln!("  wrote reproducer: {}", path.display())?;
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, AnyError> {
    let mut target = "all";
    let mut cases: u64 = 2000;
    let mut seed: u64 = 1;
    let mut blind = false;
    let mut save_repros = false;
    let mut max_input: usize = 1 << 16;
    let mut rounds: u64 = 1;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--target" => target = it.next().ok_or("--target needs a value")?,
            "--cases" => {
                cases = parse_size("--cases", it.next().ok_or("--cases needs a value")?)?;
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                rounds = v
                    .parse::<u64>()
                    .map_err(|_| format!("--rounds expects an integer, got {v:?}"))?
                    .max(1);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--blind" => blind = true,
            "--save-repros" => save_repros = true,
            "--max-input" => {
                max_input =
                    parse_size("--max-input", it.next().ok_or("--max-input needs a value")?)?
                        as usize;
            }
            other => return Err(format!("fuzz: unknown argument {other:?}").into()),
        }
    }
    if !coverage::enabled() {
        eprintln!(
            "note: built without the `coverage` feature; edge counts read 0 and guided \
             mode degenerates to blind mutation (rebuild with --features coverage)"
        );
    }
    // Per-case budgets small enough that decode bombs are cut off fast.
    let limits = DecodeLimits {
        max_output_bytes: 1 << 22,
        decode_fuel: 1 << 24,
        max_resident_bytes: 1 << 22,
        ..DecodeLimits::default()
    };
    // Between cases every decode-structure cache rolls its generation,
    // so one case's hostile residue can never shape the next case.
    let reset = || {
        code_compression::coding::huffman::bump_decoder_cache_generation();
        code_compression::flate::inflate::bump_table_cache_generation();
        code_compression::wire::bump_pattern_table_cache_generation();
    };
    let names: Vec<&str> = if target == "all" {
        vec!["wire", "gzip", "demand", "brisc"]
    } else {
        vec![target]
    };
    let mut findings_total = 0usize;
    for name in names {
        let (seeds, mut run) = fuzz_target(name, limits)?;
        let mut reports = Vec::new();
        for round in 0..rounds {
            let config = FuzzConfig {
                seed: seed + round,
                cases,
                max_input_len: max_input,
                guided: !blind,
                ..FuzzConfig::default()
            };
            let report = if blind {
                run_blind_schedule(&config, &seeds, &mut run, reset)
            } else {
                run_campaign(&config, &seeds, &default_dictionary(), &mut run, reset)
            };
            print_fuzz_report(name, blind, &report)?;
            if save_repros {
                save_reproducers(name, seed + round, &report)?;
            }
            findings_total += report.findings.len();
            reports.push(report);
        }
        if rounds > 1 {
            let maps: Vec<&[u64]> = reports.iter().map(|r| r.edge_map.as_slice()).collect();
            outln!(
                "fuzz {name}: union over {rounds} rounds: {} unique edges",
                union_edges(&maps)
            )?;
        }
    }
    Ok(if findings_total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parses a fault rate: `N` means N percent, `N/D` an explicit ratio.
fn parse_ratio(flag: &str, s: &str) -> Result<(u64, u64), AnyError> {
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (n.parse::<u64>(), d.parse::<u64>()),
        None => (s.parse::<u64>(), Ok(100)),
    };
    match (num, den) {
        (Ok(n), Ok(d)) if d > 0 && n <= d => Ok((n, d)),
        _ => Err(format!("{flag} expects N (percent) or N/D with N <= D, got {s:?}").into()),
    }
}

/// Every corpus benchmark merged into one module (names prefixed per
/// benchmark to stay unique) — the default serve-sim workload, a few
/// dozen independently fetchable functions.
fn merged_corpus() -> Result<Module, AnyError> {
    let mut merged = Module::default();
    for b in benchmarks() {
        let module = b.compile()?;
        for mut f in module.functions {
            f.name = format!("{}__{}", b.name, f.name);
            merged.functions.push(f);
        }
        for mut g in module.globals {
            g.name = format!("{}__{}", b.name, g.name);
            merged.globals.push(g);
        }
    }
    Ok(merged)
}

fn cmd_serve_sim(args: &[String]) -> Result<ExitCode, AnyError> {
    let mut cfg = SoakConfig::default();
    let mut corrupt: usize = 0;
    let mut input: Option<&str> = None;
    let mut metrics_interval: Option<u64> = None;
    let mut metrics_stream: Option<&str> = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--metrics-interval" => {
                let v = it.next().ok_or("--metrics-interval needs a value (virtual ms)")?;
                metrics_interval = Some(parse_size("--metrics-interval", v)?.max(1));
            }
            "--metrics-stream" => {
                metrics_stream = Some(it.next().ok_or("--metrics-stream needs a path")?);
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                cfg.clients = parse_size("--clients", v)? as usize;
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                cfg.requests_per_client = parse_size("--requests", v)?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--fault-rate" => {
                let v = it.next().ok_or("--fault-rate needs a value")?;
                (cfg.fault_num, cfg.fault_den) = parse_ratio("--fault-rate", v)?;
            }
            "--corrupt" => {
                let v = it.next().ok_or("--corrupt needs a value")?;
                corrupt = v
                    .parse::<usize>()
                    .map_err(|_| format!("--corrupt expects an integer, got {v:?}"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                cfg.workers = v
                    .parse::<usize>()
                    .map_err(|_| format!("--workers expects an integer, got {v:?}"))?
                    .max(1);
            }
            "--cache" => {
                let v = it.next().ok_or("--cache needs a value")?;
                cfg.server.max_cache_bytes = parse_size("--cache", v)?;
            }
            "--channels" => {
                let v = it.next().ok_or("--channels needs a value")?;
                cfg.channels = v
                    .split(',')
                    .map(|s| match s.trim() {
                        "modem" => Ok(ChannelKind::Modem),
                        "lan" => Ok(ChannelKind::Lan),
                        "disk" => Ok(ChannelKind::Disk),
                        other => {
                            Err(format!("--channels: unknown channel {other:?} (modem|lan|disk)"))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(other),
            other => return Err(format!("serve-sim: unknown argument {other:?}").into()),
        }
    }

    let module = match input {
        Some(path) => load_module(path)?,
        None => merged_corpus()?,
    };
    let image = DemandImage::build(&module, WireOptions::default())?;
    let (image, injected) = if corrupt > 0 {
        corrupt_units(&image, corrupt, cfg.seed ^ 0x0bad_5eed)
    } else {
        (image, Vec::new())
    };

    outln!(
        "serve-sim: {} functions, {} unit bytes, {} clients x {} requests, fault rate {}/{}",
        image.names().count(),
        image.total_units(),
        cfg.clients,
        cfg.requests_per_client,
        cfg.fault_num,
        cfg.fault_den,
    )?;
    for (name, n) in channel_mix(&cfg) {
        outln!("  {n:>3} clients on {name}")?;
    }
    if !injected.is_empty() {
        outln!("  source-corrupt injected: {}", injected.join(", "))?;
    }

    // With live metrics enabled, the run also collects request-scoped
    // spans and must pass the span ↔ counter reconcile check: the
    // stream is only trustworthy if the two accounting paths agree.
    let mut obs = match metrics_interval {
        Some(ms) => SoakObserver::new().with_metrics_interval(ms * MILLI).with_spans(),
        None => SoakObserver::new(),
    };
    let report = run_soak_observed(&image, &cfg, &mut obs);
    report.publish_telemetry();

    if metrics_interval.is_some() {
        let stream = obs.stream_lines.join("\n") + "\n";
        match metrics_stream {
            Some(path) => {
                std::fs::write(path, &stream)?;
                outln!("wrote metric stream: {path} ({} samples)", obs.stream_lines.len())?;
            }
            None => out!("{stream}")?,
        }
        match reconcile(&obs.spans, &obs.final_snapshot(&report)) {
            Ok(rec) => outln!(
                "reconcile: ok ({} spans, {} requests, {} attempts, {} checks)",
                rec.spans, rec.requests, rec.attempts, rec.checks,
            )?,
            Err(errors) => {
                for e in &errors {
                    eprintln!("reconcile: {e}");
                }
                return Err(format!(
                    "serve-sim: span/counter reconcile failed ({} mismatches)",
                    errors.len()
                )
                .into());
            }
        }
    }

    outln!(
        "soak: {} requests over {:.3} virtual s",
        report.requests,
        report.virtual_duration as f64 / 1e9,
    )?;
    outln!(
        "  delivered {}  failed {}  attempts {}  retries {}  max attempts/request {}",
        report.delivered,
        report.failed,
        report.attempts,
        report.retries,
        report.max_attempts_seen,
    )?;
    outln!(
        "  sheds {}  timeouts {}  corrupt deliveries {}  source-corrupt verdicts {}",
        report.sheds,
        report.timeouts,
        report.corrupt_deliveries,
        report.source_corrupt,
    )?;
    outln!(
        "  breaker: opens {}  half-opens {}  recoveries {}  rejects {}",
        report.breaker_opens,
        report.breaker_half_opens,
        report.breaker_recoveries,
        report.breaker_rejects,
    )?;
    outln!(
        "  quarantine: entered {}  recovered {}  still held {}",
        report.quarantines,
        report.quarantine_recoveries,
        report.quarantined_end,
    )?;
    outln!(
        "  cache: hits {}  misses {}  evictions {}  raw fallbacks {}  peak {} bytes",
        report.cache_hits,
        report.cache_misses,
        report.cache_evictions,
        report.raw_fallbacks,
        report.peak_cache_bytes,
    )?;
    outln!(
        "  coverage: {}/{} functions delivered",
        report.names_delivered,
        report.names_requested,
    )?;
    if !report.permanently_corrupt.is_empty() {
        outln!("  flagged source-corrupt: {}", report.permanently_corrupt.join(", "))?;
    }

    if report.survived() {
        outln!("serve-sim: survived (no stuck clients, nothing silently undelivered)")?;
        Ok(ExitCode::SUCCESS)
    } else {
        outln!(
            "serve-sim: FAILED (stuck clients {}, undelivered: {})",
            report.stuck_clients,
            report.undelivered.join(", "),
        )?;
        Ok(ExitCode::FAILURE)
    }
}
