//! Differential fuzzing of the table-driven inflate against the naive
//! in-tree reference decoder.
//!
//! `codecomp_flate::inflate` (two-level lookup tables, 64-bit bit
//! reservoir) and `codecomp_flate::reference_inflate` (bit-at-a-time,
//! table-free canonical-code walker) share no decoding machinery, so
//! agreement between them is strong evidence both implement RFC 1951.
//! The oracle rules, for every input:
//!
//! - if either accepts, both must accept with **byte-identical** output;
//! - if both reject, the error **category** (truncated / corrupt /
//!   limit-exceeded) must match;
//! - any accept/reject divergence is a bug.
//!
//! Inputs come from three sources: round-trips of the full corpus crate
//! through our own `deflate`, hand-authored RFC 1951 edge-case vectors,
//! and ≥ 2,000 seeded mutations from the shared fault-injection
//! schedule. Everything is deterministic in the seeds.
//!
//! `CODECOMP_DIFF_MUTATIONS` overrides the per-payload mutation count
//! (the CI smoke step sets it low for a quick deterministic pass).

use code_compression::core::fault::mutation_schedule;
use code_compression::corpus::{benchmarks, synthetic, SynthConfig};
use code_compression::flate::deflate::deflate_compress_fixed;
use code_compression::flate::{
    deflate_compress, inflate, inflate_with_limit, reference_inflate,
    reference_inflate_with_limit, CompressionLevel, FlateError,
};
use code_compression::wire::{compress as wire_compress, WireOptions};
use codecomp_coding::bits::LsbBitWriter;
use codecomp_coding::huffman::{build_code_lengths, canonical_codes};

/// Error category for oracle comparison: both decoders must agree on
/// it whenever both reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Category {
    Truncated,
    Corrupt,
    Limit,
    Other,
}

fn category(e: &FlateError) -> Category {
    match e {
        FlateError::Truncated => Category::Truncated,
        FlateError::Corrupt(_) => Category::Corrupt,
        FlateError::LimitExceeded { .. } => Category::Limit,
        _ => Category::Other,
    }
}

/// Runs both decoders and applies the oracle rules.
fn check(what: &str, data: &[u8], limit: usize) {
    let fast = inflate_with_limit(data, limit);
    let slow = reference_inflate_with_limit(data, limit);
    match (&fast, &slow) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: decoders accept with different output"),
        (Err(ea), Err(eb)) => assert_eq!(
            category(ea),
            category(eb),
            "{what}: reject categories diverge (fast {ea:?}, reference {eb:?})"
        ),
        _ => panic!(
            "{what}: accept/reject divergence (fast {:?}, reference {:?})",
            fast.as_ref().map(|v| v.len()),
            slow.as_ref().map(|v| v.len()),
        ),
    }
}

/// Mutations per base payload. Two payload families × four encoder
/// paths × 350 = 2,800 ≥ the 2,000-mutation floor;
/// `CODECOMP_DIFF_MUTATIONS` overrides for the CI smoke run.
fn mutations_per_payload() -> usize {
    std::env::var("CODECOMP_DIFF_MUTATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(350)
}

/// Mutated streams can inflate to huge outputs (corrupted stored
/// lengths, runaway matches); a 1 MiB ceiling bounds runtime and
/// simultaneously fuzzes the `LimitExceeded` path of both decoders.
const FUZZ_LIMIT: usize = 1 << 20;

/// Compresses `data` through every encoder path: greedy fast, lazy
/// default, lazy dynamic-Huffman best, and forced fixed-Huffman.
fn all_encodings(name: &str, data: &[u8]) -> Vec<(String, Vec<u8>)> {
    vec![
        (
            format!("{name}/best"),
            deflate_compress(data, CompressionLevel::Best),
        ),
        (
            format!("{name}/default"),
            deflate_compress(data, CompressionLevel::Default),
        ),
        (
            format!("{name}/fast"),
            deflate_compress(data, CompressionLevel::Fast),
        ),
        (
            format!("{name}/fixed"),
            deflate_compress_fixed(data, CompressionLevel::Best),
        ),
    ]
}

/// Drives the seeded mutation schedule for one payload family. The
/// reference decoder is deliberately slow (a linear scan per stream
/// bit), so callers keep `data` to a few KiB.
fn fuzz_payload_family(name: &str, data: &[u8], seed_base: u64) {
    let per_payload = mutations_per_payload();
    for (pi, (pname, payload)) in all_encodings(name, data).iter().enumerate() {
        check(&format!("{pname}/unmutated"), payload, FUZZ_LIMIT);
        let schedule = mutation_schedule(seed_base + pi as u64, payload.len(), per_payload);
        for (i, m) in schedule.iter().enumerate() {
            let mutated = m.apply(payload);
            check(&format!("{pname}/mutation-{i} ({m:?})"), &mutated, FUZZ_LIMIT);
        }
    }
}

/// Wire images of the three smallest corpus programs: high-entropy
/// DEFLATE input (arithmetic-coded streams inside), exercising stored
/// and poorly-matching dynamic blocks.
#[test]
fn seeded_mutations_agree_on_wire_images() {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    let mut wire_bytes = Vec::new();
    for b in suite.iter().take(3) {
        let module = b.compile().expect("corpus compiles");
        wire_bytes.extend(
            wire_compress(&module, WireOptions::default())
                .expect("wire compress")
                .bytes,
        );
    }
    fuzz_payload_family("wire", &wire_bytes, 0xD1FF_0000);
}

/// Corpus program text: match-rich DEFLATE input, exercising dynamic
/// and fixed Huffman blocks with long back-references.
#[test]
fn seeded_mutations_agree_on_program_text() {
    let mut text: Vec<u8> = benchmarks()
        .iter()
        .flat_map(|b| b.source.as_bytes())
        .copied()
        .collect();
    // A few KiB keeps the naive reference decoder affordable across
    // thousands of mutated decodes in debug builds.
    text.truncate(4096);
    fuzz_payload_family("text", &text, 0xD1FF_1000);
}

#[test]
fn corpus_roundtrips_agree() {
    let mut inputs: Vec<(String, Vec<u8>)> = benchmarks()
        .iter()
        .map(|b| {
            let module = b.compile().expect("corpus compiles");
            let bytes = wire_compress(&module, WireOptions::default())
                .expect("wire compress")
                .bytes;
            (b.name.to_string(), bytes)
        })
        .collect();
    // Program sources and a couple of synthetic translation units widen
    // the byte distribution beyond wire images.
    for b in benchmarks() {
        inputs.push((format!("{}-src", b.name), b.source.as_bytes().to_vec()));
    }
    for seed in [11u64, 23] {
        inputs.push((
            format!("synthetic-{seed}"),
            synthetic(seed, SynthConfig::default()).into_bytes(),
        ));
    }
    for (name, data) in &inputs {
        for (what, packed) in all_encodings(name, data) {
            // Valid streams must decode to the original in both.
            assert_eq!(
                &inflate(&packed).expect("fast decoder accepts valid stream"),
                data,
                "roundtrip/{what}: fast decoder output differs from input"
            );
            assert_eq!(
                &reference_inflate(&packed).expect("reference accepts valid stream"),
                data,
                "roundtrip/{what}: reference output differs from input"
            );
        }
    }
}

/// The level matrix: every corpus program × every compression level
/// must round-trip bit-exactly through both the table-driven fast
/// inflate and the naive reference oracle, and the thorough levels
/// must never produce a larger stream than Fast.
#[test]
fn level_matrix_roundtrips_and_orders_sizes() {
    let levels = [
        ("fast", CompressionLevel::Fast),
        ("default", CompressionLevel::Default),
        ("best", CompressionLevel::Best),
    ];
    for b in benchmarks() {
        let data = b.source.as_bytes();
        let mut sizes = std::collections::HashMap::new();
        for (lname, level) in levels {
            let packed = deflate_compress(data, level);
            assert_eq!(
                inflate(&packed).expect("fast decoder accepts valid stream"),
                data,
                "{}/{lname}: fast inflate output differs from input",
                b.name
            );
            assert_eq!(
                reference_inflate(&packed).expect("reference accepts valid stream"),
                data,
                "{}/{lname}: reference output differs from input",
                b.name
            );
            sizes.insert(lname, packed.len());
        }
        assert!(
            sizes["best"] <= sizes["fast"],
            "{}: best ({}) compressed larger than fast ({})",
            b.name,
            sizes["best"],
            sizes["fast"]
        );
    }
}

/// Hand-authored valid and invalid vectors targeting RFC 1951 corners.
#[test]
fn edge_case_vectors_agree() {
    let fixed_lit = {
        let mut l = vec![8u8; 288];
        for x in &mut l[144..256] {
            *x = 9;
        }
        for x in &mut l[256..280] {
            *x = 7;
        }
        l
    };
    let lit_codes = canonical_codes(&fixed_lit).unwrap();
    let write_lit = |w: &mut LsbBitWriter, sym: usize| {
        w.write_huffman_code(lit_codes[sym], fixed_lit[sym]);
    };

    let mut vectors: Vec<(String, Vec<u8>)> = Vec::new();

    // Empty stored block, then a final stored block.
    vectors.push((
        "stored/two-blocks".into(),
        vec![
            0x00, 0x00, 0x00, 0xFF, 0xFF, // BFINAL=0 stored, LEN=0
            0x01, 0x02, 0x00, 0xFD, 0xFF, b'h', b'i', // final stored "hi"
        ],
    ));
    // Stored block with maximal LEN field.
    {
        let mut v = vec![0x01, 0xFF, 0xFF, 0x00, 0x00];
        v.extend(std::iter::repeat_n(0x5Au8, 65_535));
        vectors.push(("stored/max-len".into(), v));
    }
    // Fixed block: 258-byte match (code 285) at distance 1.
    {
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        write_lit(&mut w, b'x' as usize);
        write_lit(&mut w, 285); // len 258, no extra bits
        w.write_huffman_code(0, 5); // dist code 0 = distance 1
        write_lit(&mut w, 256);
        vectors.push(("fixed/258-byte-match".into(), w.finish()));
    }
    // Fixed block: maximal-family back-reference (dist code 29 + extra).
    {
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // 24,600 literals so a distance in code 29's range is reachable.
        for i in 0..24_600usize {
            write_lit(&mut w, (i * 131) % 256);
        }
        write_lit(&mut w, 285); // match len 258
        w.write_huffman_code(29, 5); // dist code 29: base 24,577, 13 extra
        w.write_bits(23, 13); // distance 24,600 exactly: the block start
        write_lit(&mut w, 256);
        vectors.push(("fixed/max-distance".into(), w.finish()));
    }
    // Fixed block: overlapping match (dist 1 < len 7) — RLE semantics.
    {
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        write_lit(&mut w, b'r' as usize);
        write_lit(&mut w, 261); // len 7
        w.write_huffman_code(0, 5); // dist 1
        write_lit(&mut w, 256);
        vectors.push(("fixed/overlap-rle".into(), w.finish()));
    }
    // Dynamic block with a degenerate one-code distance table, used.
    {
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b10, 2);
        // Literal/length lengths: 'a'=1, 256=2, 257(len 3)=2 → complete.
        // Distance lengths: one code of length 1 (dist 1) → degenerate.
        let mut lit = vec![0u8; 258];
        lit[b'a' as usize] = 1;
        lit[256] = 2;
        lit[257] = 2;
        let dist = vec![1u8];
        write_dynamic_header(&mut w, &lit, &dist);
        let lcodes = canonical_codes(&lit).unwrap();
        let dcodes = canonical_codes(&dist).unwrap();
        // "a" then match len 3 dist 1 then EOB → "aaaa".
        w.write_huffman_code(lcodes[b'a' as usize], lit[b'a' as usize]);
        w.write_huffman_code(lcodes[257], lit[257]);
        w.write_huffman_code(dcodes[0], dist[0]);
        w.write_huffman_code(lcodes[256], lit[256]);
        vectors.push(("dynamic/degenerate-dist-used".into(), w.finish()));
    }
    // Dynamic block with an all-zero distance table and no matches.
    {
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b10, 2);
        let mut lit = vec![0u8; 258];
        lit[b'z' as usize] = 1;
        lit[256] = 1;
        let dist = vec![0u8];
        write_dynamic_header(&mut w, &lit, &dist);
        let lcodes = canonical_codes(&lit).unwrap();
        w.write_huffman_code(lcodes[b'z' as usize], lit[b'z' as usize]);
        w.write_huffman_code(lcodes[256], lit[256]);
        vectors.push(("dynamic/no-dist-table".into(), w.finish()));
    }

    // Invalid vectors: categories must agree.
    vectors.push(("invalid/empty".into(), Vec::new()));
    vectors.push(("invalid/reserved-btype".into(), vec![0b0000_0111]));
    vectors.push((
        "invalid/bad-nlen".into(),
        vec![0x01, 0x01, 0x00, 0x00, 0x00, 0xAA],
    ));
    {
        // Dynamic header whose code-length code is oversubscribed:
        // HCLEN=4, all four transmitted CLC lengths = 1 (Kraft sum 2).
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b10, 2);
        w.write_bits(0, 5); // HLIT = 257
        w.write_bits(0, 5); // HDIST = 1
        w.write_bits(0, 4); // HCLEN = 4
        for _ in 0..4 {
            w.write_bits(1, 3);
        }
        vectors.push(("invalid/oversubscribed-clc".into(), w.finish()));
    }
    {
        // First code-length symbol is a 16-repeat with nothing before
        // it. CLC: symbols 16 and 17 get length 1 (a complete
        // two-symbol code); symbol 16 canonically takes code 0.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b10, 2);
        w.write_bits(0, 5); // HLIT = 257
        w.write_bits(0, 5); // HDIST = 1
        w.write_bits(15, 4); // HCLEN = 19
        w.write_bits(1, 3); // length of CLC symbol 16
        w.write_bits(1, 3); // length of CLC symbol 17
        for _ in 2..19 {
            w.write_bits(0, 3);
        }
        w.write_bits(0, 1); // symbol 16: repeat with no previous length
        vectors.push(("invalid/repeat-first".into(), w.finish()));
    }
    {
        // Undersubscribed literal table: two codes of length 3 leave
        // most of the code space unreachable.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b10, 2);
        let mut lit = vec![0u8; 258];
        lit[b'q' as usize] = 3;
        lit[256] = 3;
        let dist = vec![0u8];
        write_dynamic_header(&mut w, &lit, &dist);
        vectors.push(("invalid/undersubscribed-litlen".into(), w.finish()));
    }
    {
        // Distance before output start: a match as the very first token.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        write_lit(&mut w, 257); // len 3
        w.write_huffman_code(0, 5); // dist 1, but output is empty
        write_lit(&mut w, 256);
        vectors.push(("invalid/distance-before-start".into(), w.finish()));
    }
    {
        // Reserved fixed-tree symbols: distance codes 30/31 and
        // literal/length codes 286/287 participate in code construction
        // but must be rejected when decoded.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        write_lit(&mut w, b'k' as usize);
        write_lit(&mut w, 257);
        w.write_huffman_code(30, 5); // reserved distance code
        write_lit(&mut w, 256);
        vectors.push(("invalid/reserved-dist-30".into(), w.finish()));

        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        write_lit(&mut w, 286); // reserved literal/length code
        write_lit(&mut w, 256);
        vectors.push(("invalid/reserved-litlen-286".into(), w.finish()));
    }

    for (what, v) in &vectors {
        check(what, v, code_compression::flate::inflate::MAX_OUTPUT);
        // Every prefix of the vector head: truncation classification
        // must agree at all cut points, including mid-header ones.
        for cut in 0..v.len().min(64) {
            check(&format!("{what}/prefix-{cut}"), &v[..cut], FUZZ_LIMIT);
        }
    }
}

/// Writes an RFC 1951 dynamic-block header encoding exactly `lit` and
/// `dist` code lengths, with every length sent literally (no 16/17/18
/// repeat codes) through a freshly built code-length code.
fn write_dynamic_header(w: &mut LsbBitWriter, lit: &[u8], dist: &[u8]) {
    assert!(lit.len() >= 257);
    w.write_bits(lit.len() as u32 - 257, 5);
    w.write_bits(dist.len() as u32 - 1, 5);
    w.write_bits(19 - 4, 4); // HCLEN = 19: transmit all CLC lengths
    let mut freq = [0u64; 19];
    for &l in lit.iter().chain(dist) {
        freq[l as usize] += 1;
    }
    let clc_lengths = build_code_lengths(&freq, 7).expect("clc code builds");
    const ORDER: [usize; 19] = [
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
    ];
    for &o in &ORDER {
        w.write_bits(u32::from(clc_lengths[o]), 3);
    }
    let clc_codes = canonical_codes(&clc_lengths).expect("valid clc");
    for &l in lit.iter().chain(dist) {
        w.write_huffman_code(clc_codes[l as usize], clc_lengths[l as usize]);
    }
}
