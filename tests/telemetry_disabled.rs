//! No-collector zero-state guarantee.
//!
//! This binary deliberately never installs a collector: the whole
//! pipeline must run with telemetry compiled in but dormant, the
//! helpers must be inert, and nothing along the way may install one
//! behind the user's back. (It is a separate integration-test binary
//! because the collector is a process-wide one-way switch.)

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::core::telemetry;
use code_compression::core::{Budget, DecodeLimits};
use code_compression::corpus::benchmarks;
use code_compression::flate::{deflate_compress, inflate, CompressionLevel};
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, decompress_budgeted, WireOptions};

#[test]
fn pipeline_without_collector_leaves_no_telemetry_state() {
    assert!(!telemetry::enabled());
    assert!(telemetry::collector().is_none());

    // The free helpers are inert, not panicking, with no collector.
    telemetry::counter_add("x", 1);
    telemetry::gauge_set("x", 1);
    telemetry::gauge_max("x", 1);
    telemetry::histogram_record("x", 1);
    telemetry::event("x", vec![("k", 1u64.into())]);
    telemetry::span("x").end();

    // A full pipeline pass: compile, wire round-trip, flate round-trip,
    // brisc compress and run, budget publishing.
    let b = &benchmarks()[0];
    let module = b.compile().expect("compiles");
    let packed = wire_compress(&module, WireOptions::default()).expect("wire pack");
    let budget = Budget::new(DecodeLimits::default());
    let back = decompress_budgeted(&packed.bytes, &budget).expect("decodes");
    assert_eq!(back, module);
    budget.publish_telemetry(); // must be a no-op, not a panic

    let data = b.source.as_bytes();
    assert_eq!(
        inflate(&deflate_compress(data, CompressionLevel::Best)).expect("inflates"),
        data
    );

    let vm = compile_module(&module, IsaConfig::full()).expect("codegen");
    let report = brisc_compress(&vm, BriscOptions::default()).expect("brisc pack");
    BriscMachine::new(&report.image, 1 << 22, 1 << 32)
        .expect("machine")
        .run("main", &[])
        .expect("runs");

    // Nothing installed a collector behind our back.
    assert!(!telemetry::enabled());
    assert!(telemetry::collector().is_none());
}
