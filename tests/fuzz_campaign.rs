//! End-to-end checks on the coverage-guided fuzzing campaign.
//!
//! With the `coverage` feature on, the guided campaign must discover at
//! least as many unique edges as an equal case budget of blind
//! `mutation_schedule` sweeps over the wire decoder — coverage feedback
//! is the tentpole claim, so it is asserted, not just reported. With
//! the feature off (the default build) the edge counters read zero and
//! the campaign degenerates to blind mutation; the tests then only
//! assert totality: no panics, no limit violations, zero edges.

use code_compression::core::fuzz::{
    default_dictionary, run_blind_schedule, run_campaign, union_edges, CampaignReport, FuzzConfig,
    Verdict,
};
use code_compression::core::{coverage, Budget, DecodeLimits};
use code_compression::corpus::benchmarks;
use code_compression::wire::{compress, decompress_budgeted, WireOptions};

fn wire_seeds() -> Vec<Vec<u8>> {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    suite
        .iter()
        .take(2)
        .map(|b| {
            let module = b.compile().expect("corpus compiles");
            compress(&module, WireOptions::default())
                .expect("compress")
                .bytes
        })
        .collect()
}

fn limits() -> DecodeLimits {
    DecodeLimits {
        max_output_bytes: 1 << 22,
        decode_fuel: 1 << 24,
        max_resident_bytes: 1 << 22,
        ..DecodeLimits::default()
    }
}

fn wire_target(bytes: &[u8]) -> Verdict {
    match decompress_budgeted(bytes, &Budget::new(limits())) {
        Ok(_) => Verdict::Accept,
        Err(_) => Verdict::Reject,
    }
}

fn reset_caches() {
    code_compression::coding::huffman::bump_decoder_cache_generation();
    code_compression::flate::inflate::bump_table_cache_generation();
    code_compression::wire::bump_pattern_table_cache_generation();
}

/// The measurement protocol EXPERIMENTS.md documents: three campaigns
/// per mode (seeds 1–3) at an equal case budget, coverage compared as
/// the union of edges across the three — single campaigns are noisy by
/// a handful of edges, unions are stable.
const CASES: u64 = 1_000;
const ROUNDS: u64 = 3;

fn run_rounds(guided: bool) -> Vec<CampaignReport> {
    let seeds = wire_seeds();
    (1..=ROUNDS)
        .map(|seed| {
            let config = FuzzConfig {
                seed,
                cases: CASES,
                guided,
                ..FuzzConfig::default()
            };
            if guided {
                run_campaign(&config, &seeds, &default_dictionary(), wire_target, reset_caches)
            } else {
                run_blind_schedule(&config, &seeds, wire_target, reset_caches)
            }
        })
        .collect()
}

fn union_of(reports: &[CampaignReport]) -> u32 {
    let maps: Vec<&[u64]> = reports.iter().map(|r| r.edge_map.as_slice()).collect();
    union_edges(&maps)
}

#[test]
fn guided_campaign_beats_blind_mutation_on_wire() {
    let guided = run_rounds(true);
    let blind = run_rounds(false);
    for r in guided.iter().chain(&blind) {
        assert!(r.findings.is_empty(), "campaign found failures: {:?}", r.findings);
        assert!(r.cases >= CASES);
    }
    let guided_edges = union_of(&guided);
    let blind_edges = union_of(&blind);
    if coverage::enabled() {
        assert!(guided_edges > 0, "instrumented build discovered no edges");
        // The feedback loop must pay its way: strictly more distinct
        // edges than blind mutation at the same case budget. Both
        // campaigns are deterministic in their seeds, so this cannot
        // flake; if instrumentation changes move the numbers, re-run
        // the EXPERIMENTS.md table alongside this test.
        assert!(
            guided_edges > blind_edges,
            "guided union {guided_edges} edges <= blind union {blind_edges} edges"
        );
        assert!(
            guided.iter().any(|r| r.coverage_inputs > 0),
            "no input was ever kept for new coverage"
        );
    } else {
        assert_eq!(guided_edges, 0, "edges counted without coverage");
        assert_eq!(blind_edges, 0, "edges counted without coverage");
    }
}

#[test]
fn campaign_is_deterministic_for_a_fixed_seed() {
    let seeds = wire_seeds();
    let config = FuzzConfig {
        seed: 7,
        cases: 150,
        ..FuzzConfig::default()
    };
    let a = run_campaign(&config, &seeds, &default_dictionary(), wire_target, reset_caches);
    let b = run_campaign(&config, &seeds, &default_dictionary(), wire_target, reset_caches);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.unique_edges, b.unique_edges);
    assert_eq!(a.corpus_size, b.corpus_size);
    assert_eq!(a.accepts, b.accepts);
    assert_eq!(a.rejects, b.rejects);
    assert!(a.findings.is_empty() && b.findings.is_empty());
}
