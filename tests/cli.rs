//! End-to-end tests of the `codecomp` command-line tool.

use std::path::PathBuf;
use std::process::Command;

const SOURCE: &str = "
int twice(int x) { return x * 2; }
int main() { print_int(twice(21)); return twice(21); }
";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_code-compression")
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("codecomp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run(args: &[&str], cwd: &PathBuf) -> (String, String, bool) {
    let out = Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn codecomp");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn full_cli_pipeline() {
    let dir = workdir();
    std::fs::write(dir.join("demo.c"), SOURCE).unwrap();

    // compile -> .ccir
    let (stdout, _, ok) = run(&["compile", "demo.c"], &dir);
    assert!(ok, "compile failed: {stdout}");
    assert!(dir.join("demo.ccir").exists());

    // run each tier from source and from binary IR.
    for tier in ["ir", "vm", "brisc", "jit"] {
        let (stdout, stderr, ok) = run(&["run", "demo.c", "--tier", tier], &dir);
        assert!(ok, "tier {tier} failed: {stderr}");
        assert!(stdout.contains("42\n=> 42"), "tier {tier} output: {stdout}");
    }
    let (stdout, _, ok) = run(&["run", "demo.ccir"], &dir);
    assert!(ok);
    assert!(stdout.contains("=> 42"));

    // wire pack / info / unpack / run.
    let (_, stderr, ok) = run(&["wire", "pack", "demo.c"], &dir);
    assert!(ok, "wire pack failed: {stderr}");
    let (stdout, _, ok) = run(&["wire", "info", "demo.ccwf"], &dir);
    assert!(ok);
    assert!(stdout.contains("$patterns"), "info: {stdout}");
    let (_, _, ok) = run(&["wire", "unpack", "demo.ccwf", "-o", "back.ccir"], &dir);
    assert!(ok);
    let (stdout, _, ok) = run(&["run", "back.ccir"], &dir);
    assert!(ok);
    assert!(stdout.contains("=> 42"));
    let (stdout, _, ok) = run(&["run", "demo.ccwf"], &dir);
    assert!(ok);
    assert!(stdout.contains("=> 42"));

    // brisc pack / info / run.
    let (_, stderr, ok) = run(&["brisc", "pack", "demo.c"], &dir);
    assert!(ok, "brisc pack failed: {stderr}");
    let (stdout, _, ok) = run(&["brisc", "info", "demo.ccbr"], &dir);
    assert!(ok);
    assert!(stdout.contains("dictionary"), "info: {stdout}");
    let (stdout, _, ok) = run(&["brisc", "run", "demo.ccbr"], &dir);
    assert!(ok);
    assert!(stdout.contains("42\n=> 42"), "brisc run: {stdout}");

    // dis shows assembly.
    let (stdout, _, ok) = run(&["dis", "demo.c"], &dir);
    assert!(ok);
    assert!(stdout.contains(".func main"), "dis: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_errors_are_reported() {
    let dir = workdir();
    std::fs::write(dir.join("bad.c"), "int main() { return nope(; }").unwrap();
    let (_, stderr, ok) = run(&["run", "bad.c"], &dir);
    assert!(!ok);
    assert!(stderr.contains("codecomp:"), "stderr: {stderr}");

    let (_, _, ok) = run(&["frobnicate"], &dir);
    assert!(!ok);

    let (_, stderr, ok) = run(&["run", "missing.c"], &dir);
    assert!(!ok);
    assert!(!stderr.is_empty());

    let (_, _, ok) = run(&["run", "bad.c", "--tier", "warp"], &dir);
    assert!(!ok);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_size_suffixes_and_decode_limits() {
    let dir = workdir();
    std::fs::write(dir.join("sizes.c"), SOURCE).unwrap();

    // --fuel accepts human-readable suffixes.
    let (stdout, stderr, ok) = run(&["run", "sizes.c", "--fuel", "64k"], &dir);
    assert!(ok, "suffixed --fuel failed: {stderr}");
    assert!(stdout.contains("=> 42"), "{stdout}");
    let (stdout, _, ok) = run(&["run", "sizes.c", "--fuel", "1m"], &dir);
    assert!(ok);
    assert!(stdout.contains("=> 42"), "{stdout}");

    // Unknown suffixes and junk are rejected with a clear message.
    let (_, stderr, ok) = run(&["run", "sizes.c", "--fuel", "12q"], &dir);
    assert!(!ok);
    assert!(stderr.contains("suffix"), "{stderr}");
    let (_, stderr, ok) = run(&["run", "sizes.c", "--max-output", "lots"], &dir);
    assert!(!ok);
    assert!(stderr.contains("size"), "{stderr}");

    // A starved --max-output trips as a limit on compressed inputs; a
    // generous one succeeds.
    let (_, stderr, ok) = run(&["wire", "pack", "sizes.c"], &dir);
    assert!(ok, "wire pack failed: {stderr}");
    let (_, stderr, ok) = run(&["run", "sizes.ccwf", "--max-output", "2"], &dir);
    assert!(!ok);
    assert!(stderr.contains("limit"), "{stderr}");
    let (stdout, stderr, ok) = run(&["run", "sizes.ccwf", "--max-output", "1m"], &dir);
    assert!(ok, "generous --max-output failed: {stderr}");
    assert!(stdout.contains("=> 42"), "{stdout}");

    // Same for BRISC images, including --max-resident passthrough.
    let (_, stderr, ok) = run(&["brisc", "pack", "sizes.c"], &dir);
    assert!(ok, "brisc pack failed: {stderr}");
    let (_, stderr, ok) = run(&["brisc", "run", "sizes.ccbr", "--max-output", "2"], &dir);
    assert!(!ok);
    assert!(stderr.contains("limit"), "{stderr}");
    let (stdout, stderr, ok) = run(
        &["run", "sizes.ccbr", "--max-output", "1m", "--max-resident", "2g"],
        &dir,
    );
    assert!(ok, "generous brisc limits failed: {stderr}");
    assert!(stdout.contains("=> 42"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_program_arguments() {
    let dir = workdir();
    std::fs::write(
        dir.join("args.c"),
        "int main(int a, int b) { return a * b; }",
    )
    .unwrap();
    let (stdout, _, ok) = run(&["run", "args.c", "--", "6", "7"], &dir);
    assert!(ok);
    assert!(stdout.contains("=> 42"), "{stdout}");
    let (_, stderr, ok) = run(&["run", "args.c", "--", "six"], &dir);
    assert!(!ok);
    assert!(stderr.contains("integers"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_serve_sim_soak_and_telemetry() {
    let dir = workdir().join("serve");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("mod.c"), SOURCE).unwrap();

    // A small soak over an explicit module, with stats and a trace.
    let soak = [
        "serve-sim", "mod.c", "--clients", "4", "--requests", "25", "--seed", "7",
        "--fault-rate", "10", "--channels", "lan,disk",
    ];
    let mut with_flags = soak.to_vec();
    with_flags.extend(["--stats", "--trace=soak.jsonl"]);
    let (stdout, stderr, ok) = run(&with_flags, &dir);
    assert!(ok, "serve-sim failed: {stderr}");
    assert!(stdout.contains("survived"), "{stdout}");
    assert!(
        stderr.contains("serve.requests") && stderr.contains("serve.delivered"),
        "--stats missing serve counters: {stderr}"
    );

    // The trace it wrote validates with our own checker.
    let (check, stderr, ok) = run(&["telemetry", "check", "soak.jsonl"], &dir);
    assert!(ok, "telemetry check failed: {stderr}");
    assert!(check.contains("trace lines ok"), "{check}");
    let trace = std::fs::read_to_string(dir.join("soak.jsonl")).unwrap();
    assert!(trace.contains("serve.soak.summary"), "{trace}");

    // Same seed, same report, bit for bit (telemetry flags only touch
    // stderr and the trace file).
    let (again, _, ok) = run(&soak, &dir);
    assert!(ok);
    assert_eq!(stdout, again, "same seed must reproduce the identical report");

    // Source corruption is flagged without sinking the run.
    let mut corrupting = soak.to_vec();
    corrupting.extend(["--corrupt", "1"]);
    let (stdout, stderr, ok) = run(&corrupting, &dir);
    assert!(ok, "corrupting serve-sim failed: {stderr}");
    assert!(stdout.contains("source-corrupt injected"), "{stdout}");

    // Unknown flags are rejected with a clear message.
    let (_, stderr, ok) = run(&["serve-sim", "--bogus"], &dir);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"), "{stderr}");
    let (_, stderr, ok) = run(&["serve-sim", "--fault-rate", "3/2"], &dir);
    assert!(!ok);
    assert!(stderr.contains("fault-rate"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn piped_stdout_closed_early_is_not_an_error() {
    use std::io::Read;
    use std::process::Stdio;
    let dir = workdir().join("pipe");
    std::fs::create_dir_all(&dir).unwrap();
    // Enough functions that the `dis` listing far exceeds the OS pipe
    // buffer, so closing the read end mid-stream raises EPIPE in the
    // writer instead of the whole stream fitting in the buffer.
    let mut src = String::new();
    for i in 0..900 {
        src.push_str(&format!("int f{i}(int x) {{ return x + {i}; }}\n"));
    }
    src.push_str("int main() { return f1(41); }\n");
    std::fs::write(dir.join("big.c"), src).unwrap();

    let mut child = Command::new(bin())
        .args(["dis", "big.c"])
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn codecomp");
    // The `codecomp dis big.c | head -c 256` analogue: take a few
    // bytes, then close the pipe with most of the stream unread.
    let mut stdout = child.stdout.take().expect("piped stdout");
    let mut head = [0u8; 256];
    stdout.read_exact(&mut head).expect("read leading output");
    drop(stdout);
    let status = child.wait().expect("wait for codecomp");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(status.success(), "closed pipe failed the command: {stderr}");
    assert!(!stderr.contains("panic"), "panicked on closed pipe: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_telemetry_flags() {
    let dir = workdir();
    std::fs::write(dir.join("tele.c"), SOURCE).unwrap();

    // --stats: the per-stream table's total row equals the bytes
    // actually written to disk.
    let (stdout, stderr, ok) = run(&["wire", "pack", "tele.c", "--stats"], &dir);
    assert!(ok, "wire pack --stats failed: {stderr}");
    assert!(stderr.contains("per-stage stream breakdown"), "{stderr}");
    assert!(!stderr.contains("WARNING"), "sections must sum: {stderr}");
    let on_disk = std::fs::metadata(dir.join("tele.ccwf")).unwrap().len();
    assert!(stdout.contains(&format!("({on_disk} bytes)")), "{stdout}");
    let total = stderr
        .lines()
        .find_map(|l| l.trim().strip_prefix("total")?.trim().parse::<u64>().ok())
        .expect("stats table has a total row");
    assert_eq!(total, on_disk, "--stats total must equal the image size");

    // Decode-side --stats: unpack prints the decoder's reset-and-set
    // stream table plus the decode-table cache hit/miss counters.
    let (_, stderr, ok) = run(
        &["wire", "unpack", "tele.ccwf", "-o", "tele-back.ccir", "--stats"],
        &dir,
    );
    assert!(ok, "wire unpack --stats failed: {stderr}");
    assert!(
        stderr.contains("per-stage stream breakdown (decode)"),
        "{stderr}"
    );
    assert!(!stderr.contains("WARNING"), "decode sections must sum: {stderr}");
    assert!(
        stderr.contains("coding.huffman.table_cache.misses"),
        "cache counters missing from --stats: {stderr}"
    );
    assert!(
        stderr.contains("wire.patterns.table_cache.misses"),
        "pattern cache counters missing from --stats: {stderr}"
    );

    // --metrics=PATH dumps a registry snapshot holding the same total.
    let (_, stderr, ok) = run(
        &["wire", "pack", "tele.c", "--metrics=metrics.json"],
        &dir,
    );
    assert!(ok, "{stderr}");
    let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    assert!(
        metrics.contains(&format!("\"wire.encode.total_bytes\":{on_disk}")),
        "{metrics}"
    );
    // --metrics alone dumps to stdout.
    let (stdout, _, ok) = run(&["wire", "pack", "tele.c", "--metrics"], &dir);
    assert!(ok);
    assert!(stdout.contains("\"counters\""), "{stdout}");

    // --trace=PATH writes JSON lines that our own validator accepts.
    let (_, stderr, ok) = run(
        &["run", "tele.ccwf", "--trace=trace.jsonl"],
        &dir,
    );
    assert!(ok, "{stderr}");
    let trace = std::fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    assert!(trace.lines().count() >= 2, "trace too small: {trace}");
    assert!(trace.contains("wire.decompress"), "{trace}");
    let (stdout, stderr, ok) = run(&["telemetry", "check", "trace.jsonl"], &dir);
    assert!(ok, "telemetry check failed: {stderr}");
    assert!(stdout.contains("trace lines ok"), "{stdout}");

    // Multiple trace files in one invocation, reported per file.
    let (stdout, stderr, ok) = run(
        &["telemetry", "check", "trace.jsonl", "trace.jsonl"],
        &dir,
    );
    assert!(ok, "multi-file telemetry check failed: {stderr}");
    assert_eq!(stdout.matches("trace lines ok").count(), 2, "{stdout}");

    // The checker rejects a corrupted trace with a line number.
    std::fs::write(dir.join("bad.jsonl"), "{\"t\":1}\n").unwrap();
    let (_, stderr, ok) = run(&["telemetry", "check", "bad.jsonl"], &dir);
    assert!(!ok);
    assert!(stderr.contains("bad.jsonl:1"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
