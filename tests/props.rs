//! Workspace-level randomized (deterministic, seeded) tests: random
//! programs from the synthetic generator survive the entire pipeline
//! with exact agreement.

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::core::fault::XorShift64;
use code_compression::corpus::{synthetic, SynthConfig};
use code_compression::front::compile;
use code_compression::ir::eval::Evaluator;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::interp::Machine;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, decompress, Coder, WireOptions};

const CASES: u64 = 12;
const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 26;

/// Any generated program: IR evaluator, VM interpreter, and BRISC
/// in-place interpreter agree exactly.
#[test]
fn generated_programs_agree_across_tiers() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x4A00 + case);
        let seed = rng.below(10_000);
        let src = synthetic(
            seed,
            SynthConfig {
                functions: 10,
                statements_per_function: 6,
                globals: 4,
            },
        );
        let ir = compile(&src).expect("generated programs compile");
        let reference = Evaluator::new(&ir, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();

        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let vm_out = Machine::new(&vm, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(vm_out.value, reference.value);

        let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
        let out = BriscMachine::new(&report.image, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(out.value, reference.value);
    }
}

/// Any generated program round-trips through the wire format under
/// randomized pipeline options.
#[test]
fn generated_programs_wire_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x4B00 + case);
        let seed = rng.below(10_000);
        let src = synthetic(
            seed,
            SynthConfig {
                functions: 6,
                statements_per_function: 5,
                globals: 3,
            },
        );
        let ir = compile(&src).expect("generated programs compile");
        let coder = match rng.below(3) {
            0 => Coder::Raw,
            1 => Coder::Huffman,
            _ => Coder::Arithmetic,
        };
        let options = WireOptions {
            split_streams: rng.chance(1, 2),
            mtf: rng.chance(1, 2),
            coder,
            deflate: rng.chance(1, 2),
        };
        let packed = wire_compress(&ir, options).unwrap();
        assert_eq!(decompress(&packed.bytes).unwrap(), ir);
    }
}

/// De-tuned ISA variants compute the same values.
#[test]
fn generated_programs_agree_across_isa_variants() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x4C00 + case);
        let seed = rng.below(10_000);
        let src = synthetic(
            seed,
            SynthConfig {
                functions: 6,
                statements_per_function: 5,
                globals: 3,
            },
        );
        let ir = compile(&src).expect("generated programs compile");
        let reference = Evaluator::new(&ir, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        for (_, isa) in IsaConfig::variants() {
            let vm = compile_module(&ir, isa).unwrap();
            let out = Machine::new(&vm, MEM, FUEL)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(out.value, reference.value);
        }
    }
}
