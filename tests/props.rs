//! Workspace-level property tests: random programs from the synthetic
//! generator survive the entire pipeline with exact agreement.

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::corpus::{synthetic, SynthConfig};
use code_compression::front::compile;
use code_compression::ir::eval::Evaluator;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::interp::Machine;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, decompress, WireOptions};
use proptest::prelude::*;

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 26;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated program: IR evaluator, VM interpreter, and BRISC
    /// in-place interpreter agree exactly.
    #[test]
    fn generated_programs_agree_across_tiers(seed in 0u64..10_000) {
        let src = synthetic(
            seed,
            SynthConfig { functions: 10, statements_per_function: 6, globals: 4 },
        );
        let ir = compile(&src).expect("generated programs compile");
        let reference = Evaluator::new(&ir, MEM, FUEL).unwrap().run("main", &[]).unwrap();

        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let vm_out = Machine::new(&vm, MEM, FUEL).unwrap().run("main", &[]).unwrap();
        prop_assert_eq!(vm_out.value, reference.value);

        let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
        let out = BriscMachine::new(&report.image, MEM, FUEL).unwrap().run("main", &[]).unwrap();
        prop_assert_eq!(out.value, reference.value);
    }

    /// Any generated program round-trips through the wire format under
    /// randomized pipeline options.
    #[test]
    fn generated_programs_wire_roundtrip(
        seed in 0u64..10_000,
        split in any::<bool>(),
        mtf in any::<bool>(),
        coder_sel in 0u8..3,
        deflate in any::<bool>(),
    ) {
        let src = synthetic(
            seed,
            SynthConfig { functions: 6, statements_per_function: 5, globals: 3 },
        );
        let ir = compile(&src).expect("generated programs compile");
        let coder = match coder_sel {
            0 => code_compression::wire::Coder::Raw,
            1 => code_compression::wire::Coder::Huffman,
            _ => code_compression::wire::Coder::Arithmetic,
        };
        let options = WireOptions { split_streams: split, mtf, coder, deflate };
        let packed = wire_compress(&ir, options).unwrap();
        prop_assert_eq!(decompress(&packed.bytes).unwrap(), ir);
    }

    /// De-tuned ISA variants compute the same values.
    #[test]
    fn generated_programs_agree_across_isa_variants(seed in 0u64..10_000) {
        let src = synthetic(
            seed,
            SynthConfig { functions: 6, statements_per_function: 5, globals: 3 },
        );
        let ir = compile(&src).expect("generated programs compile");
        let reference = Evaluator::new(&ir, MEM, FUEL).unwrap().run("main", &[]).unwrap();
        for (_, isa) in IsaConfig::variants() {
            let vm = compile_module(&ir, isa).unwrap();
            let out = Machine::new(&vm, MEM, FUEL).unwrap().run("main", &[]).unwrap();
            prop_assert_eq!(out.value, reference.value);
        }
    }
}
