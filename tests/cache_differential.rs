//! Differential decode across cache states: caching must be
//! *unobservable* in decoder output.
//!
//! The wire decoder interns three kinds of decode structures behind
//! process-wide caches — canonical Huffman tables (coding), DEFLATE
//! dynamic tables (flate), and decoded `$patterns` tables (wire). A
//! cached table is only sound if it is indistinguishable from a fresh
//! per-section rebuild, so every corpus module is decoded three ways —
//! cold caches, warm caches, and interleaved with other modules so the
//! caches fill with foreign entries — and all paths must reproduce the
//! original module exactly, under every option combination.
//!
//! The second half attacks cache *poisoning*: seeded mutations of a
//! valid image are decoded with warm caches, and after every hostile
//! attempt the unmutated image must still decode correctly. Failed
//! builds are never cached, so no mutation may leave residue that
//! corrupts a later decode.

use code_compression::coding::huffman::clear_decoder_cache;
use code_compression::core::fault::sweep_decoder;
use code_compression::corpus::benchmarks;
use code_compression::flate::inflate::clear_table_cache;
use code_compression::ir::Module;
use code_compression::wire::{
    clear_pattern_table_cache, compress, decompress, Coder, DemandImage, WireOptions,
};

/// Empties every decode-structure cache the wire pipeline consults.
fn clear_all_decode_caches() {
    clear_decoder_cache();
    clear_table_cache();
    clear_pattern_table_cache();
}

/// Every pipeline-stage combination the container can express, so the
/// cached paths are compared against the rebuild paths on all of them.
fn option_matrix() -> Vec<(&'static str, WireOptions)> {
    vec![
        ("default", WireOptions::default()),
        (
            "raw-coder",
            WireOptions {
                coder: Coder::Raw,
                ..WireOptions::default()
            },
        ),
        (
            "arith-coder",
            WireOptions {
                coder: Coder::Arithmetic,
                ..WireOptions::default()
            },
        ),
        (
            "no-mtf",
            WireOptions {
                mtf: false,
                ..WireOptions::default()
            },
        ),
        (
            "no-deflate",
            WireOptions {
                deflate: false,
                ..WireOptions::default()
            },
        ),
        (
            "mixed-stream",
            WireOptions {
                split_streams: false,
                ..WireOptions::default()
            },
        ),
    ]
}

fn corpus_modules() -> Vec<(&'static str, Module)> {
    benchmarks()
        .iter()
        .map(|b| (b.name, b.compile().expect("corpus programs compile")))
        .collect()
}

#[test]
fn cold_warm_and_cross_module_decodes_agree() {
    let modules = corpus_modules();
    for (oname, options) in option_matrix() {
        let images: Vec<(&str, &Module, Vec<u8>)> = modules
            .iter()
            .map(|(name, m)| (*name, m, compress(m, options).expect("compress").bytes))
            .collect();
        for (name, module, image) in &images {
            // Cold: every table is a per-section rebuild.
            clear_all_decode_caches();
            let cold = decompress(image).expect("cold decode");
            assert_eq!(&cold, *module, "{oname}/{name}: cold decode differs");
            // Warm: every table the image describes is already interned.
            let warm = decompress(image).expect("warm decode");
            assert_eq!(cold, warm, "{oname}/{name}: warm decode differs from cold");
        }
        // Interleaved: caches hold every module's tables at once, so
        // lookups must key on content, not on decode order.
        for _ in 0..2 {
            for (name, module, image) in &images {
                let got = decompress(image).expect("interleaved decode");
                assert_eq!(&got, *module, "{oname}/{name}: interleaved decode differs");
            }
        }
    }
}

#[test]
fn demand_units_decode_identically_cold_and_warm() {
    for (name, module) in corpus_modules().iter().take(4) {
        let image = DemandImage::build(module, WireOptions::default()).expect("demand build");
        for f in &module.functions {
            clear_all_decode_caches();
            let cold = image.load_function(&f.name).expect("cold unit decode");
            let warm = image.load_function(&f.name).expect("warm unit decode");
            assert_eq!(&cold, f, "demand/{name}/{}: cold unit differs", f.name);
            assert_eq!(cold, warm, "demand/{name}/{}: warm unit differs", f.name);
        }
        clear_all_decode_caches();
        assert_eq!(
            &image.load_all().expect("cold load_all"),
            module,
            "demand/{name}: cold load_all differs"
        );
        assert_eq!(
            &image.load_all().expect("warm load_all"),
            module,
            "demand/{name}: warm load_all differs"
        );
    }
}

/// Seeded mutations per attacked image; three images keeps the suite
/// past 1,000 hostile decodes.
const MUTATIONS_PER_PAYLOAD: usize = 350;

#[test]
fn hostile_inputs_cannot_poison_warm_caches() {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    for (i, b) in suite.iter().take(3).enumerate() {
        let module = b.compile().expect("corpus compiles");
        let image = compress(&module, WireOptions::default())
            .expect("compress")
            .bytes;
        // Warm every cache with the valid image's tables.
        clear_all_decode_caches();
        assert_eq!(decompress(&image).expect("valid decode"), module);
        sweep_decoder(
            &format!("wire/{}", b.name),
            &image,
            0xCAFE_0000 + i as u64,
            MUTATIONS_PER_PAYLOAD,
            false,
            |bytes| {
                let _ = decompress(bytes);
            },
            |case| {
                // The hostile attempt must leave no residue: the valid
                // image still decodes to the same module afterwards.
                let back = decompress(&image).expect("valid image decodes after hostile attempt");
                assert_eq!(
                    back, module,
                    "wire/{}: decode differs after hostile {case}",
                    b.name
                );
            },
        );
    }
}
