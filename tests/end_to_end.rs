//! Integration tests spanning every crate: the full corpus runs through
//! every execution tier and both compressors round-trip.

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::translate::{emit_x86, translate};
use code_compression::brisc::{compress as brisc_compress, BriscImage, BriscOptions};
use code_compression::corpus::{benchmarks, synthetic, SynthConfig};
use code_compression::front::compile;
use code_compression::ir::eval::Evaluator;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::interp::Machine;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, decompress, WireOptions};

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 28;

/// Runs one module through all four tiers and asserts exact agreement.
fn all_tiers_agree(name: &str, ir: &code_compression::ir::Module) {
    let reference = Evaluator::new(ir, MEM, FUEL)
        .unwrap()
        .run("main", &[])
        .unwrap_or_else(|e| panic!("{name}: reference eval failed: {e}"));

    let vm = compile_module(ir, IsaConfig::full()).unwrap();
    let vm_out = Machine::new(&vm, MEM, FUEL)
        .unwrap()
        .run("main", &[])
        .unwrap();
    assert_eq!(vm_out.value, reference.value, "{name}: vm value");
    assert_eq!(vm_out.output, reference.output, "{name}: vm output");

    let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
    let brisc_out = BriscMachine::new(&report.image, MEM, FUEL)
        .unwrap()
        .run("main", &[])
        .unwrap();
    assert_eq!(brisc_out.value, reference.value, "{name}: brisc value");
    assert_eq!(brisc_out.output, reference.output, "{name}: brisc output");

    let translated = translate(&report.image).unwrap();
    let fast_out = Machine::new(&translated, MEM, FUEL)
        .unwrap()
        .run("main", &[])
        .unwrap();
    assert_eq!(fast_out.value, reference.value, "{name}: translated value");
    assert_eq!(
        fast_out.output, reference.output,
        "{name}: translated output"
    );
}

#[test]
fn corpus_runs_identically_on_all_tiers() {
    for b in benchmarks() {
        let ir = b.compile().unwrap();
        all_tiers_agree(b.name, &ir);
    }
}

#[test]
fn corpus_wire_roundtrips() {
    for b in benchmarks() {
        let ir = b.compile().unwrap();
        let packed = wire_compress(&ir, WireOptions::default()).unwrap();
        assert_eq!(decompress(&packed.bytes).unwrap(), ir, "{}", b.name);
    }
}

#[test]
fn corpus_brisc_images_serialize() {
    for b in benchmarks() {
        let ir = b.compile().unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
        let bytes = report.image.to_bytes();
        let back = BriscImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, report.image, "{}", b.name);
        // The reloaded image still runs.
        let out = BriscMachine::new(&back, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        let reference = Evaluator::new(&ir, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        assert_eq!(out.value, reference.value, "{}", b.name);
    }
}

#[test]
fn corpus_compiles_under_all_isa_variants() {
    for b in benchmarks() {
        let ir = b.compile().unwrap();
        let reference = Evaluator::new(&ir, MEM, FUEL)
            .unwrap()
            .run("main", &[])
            .unwrap();
        for (vname, isa) in IsaConfig::variants() {
            let vm = compile_module(&ir, isa).unwrap();
            let out = Machine::new(&vm, MEM, FUEL)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(out.value, reference.value, "{} under {vname}", b.name);
        }
    }
}

#[test]
fn synthetic_programs_survive_the_whole_pipeline() {
    for seed in [11u64, 222, 3333] {
        let src = synthetic(
            seed,
            SynthConfig {
                functions: 25,
                statements_per_function: 8,
                globals: 5,
            },
        );
        let ir = compile(&src).unwrap();
        all_tiers_agree(&format!("synthetic-{seed}"), &ir);
        let packed = wire_compress(&ir, WireOptions::default()).unwrap();
        assert_eq!(decompress(&packed.bytes).unwrap(), ir, "synthetic-{seed}");
    }
}

#[test]
fn wire_and_brisc_both_compress_large_programs() {
    let src = synthetic(
        7,
        SynthConfig {
            functions: 120,
            statements_per_function: 10,
            globals: 8,
        },
    );
    let ir = compile(&src).unwrap();
    let raw = code_compression::ir::binary::encode_module(&ir)
        .unwrap()
        .len();
    let wire = wire_compress(&ir, WireOptions::default()).unwrap().total();
    assert!(wire * 2 < raw, "wire {wire} should be well under raw {raw}");

    let vm = compile_module(&ir, IsaConfig::full()).unwrap();
    let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
    assert!(
        report.image.code_size() < report.input_bytes,
        "brisc code {} should be under the base encoding {}",
        report.image.code_size(),
        report.input_bytes
    );
    // The paper's ordering: wire (with its LZ stage) is denser than
    // BRISC, which must stay byte-aligned and randomly addressable.
    assert!(
        wire < report.image.total_bytes(),
        "wire {wire} should beat brisc {}",
        report.image.total_bytes()
    );
}

#[test]
fn translation_emits_native_code_for_the_corpus() {
    for b in benchmarks() {
        let ir = b.compile().unwrap();
        let vm = compile_module(&ir, IsaConfig::full()).unwrap();
        let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
        let (program, bytes) = emit_x86(&report.image).unwrap();
        assert!(!bytes.is_empty(), "{}", b.name);
        assert!(program.validate().is_ok(), "{}", b.name);
    }
}

#[test]
fn interpretation_touches_fewer_bytes_than_the_whole_image() {
    // Partial execution only touches what it decodes.
    let src = "
        int used() { return 12; }
        int unused1(int x) { int i; int s = 0; for (i = 0; i < x; i++) s += i * i; return s; }
        int unused2(int x) { return unused1(x) + unused1(x + 1); }
        int main() { return used(); }
    ";
    let ir = compile(src).unwrap();
    let vm = compile_module(&ir, IsaConfig::full()).unwrap();
    let report = brisc_compress(&vm, BriscOptions::default()).unwrap();
    let mut m = BriscMachine::new(&report.image, MEM, FUEL).unwrap();
    m.run("main", &[]).unwrap();
    assert!(m.touched_code_bytes() < report.image.code_size() / 2);
}
