//! Fault-injection harness: every decoder must be *total*.
//!
//! For each corpus program we build the serialized artifacts the
//! toolchain ships — a wire-format image, a function-at-a-time demand
//! image, a gzip member, and a BRISC image (fed to both the lazy
//! interpreter and the eager translator) — then attack each decoder
//! two ways:
//!
//! 1. truncation at **every** prefix boundary of the payload, and
//! 2. ≥ 1,000 seeded mutations (truncations, single-bit flips, random
//!    byte splices) from [`mutation_schedule`].
//!
//! A decoder may reject a mutated input (any error is fine) or accept
//! it (a mutation can be semantically neutral), but it must never
//! panic. Unmutated payloads must round-trip bit-exactly.
//!
//! Everything is deterministic: the mutation streams come from the
//! in-tree xorshift PRNG, so a failing seed reproduces exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use code_compression::brisc::compress::{compress as brisc_compress, BriscOptions};
use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::translate::translate;
use code_compression::brisc::BriscImage;
use code_compression::core::fault::mutation_schedule;
use code_compression::corpus::benchmarks;
use code_compression::flate::{gzip_compress, gzip_decompress, CompressionLevel};
use code_compression::ir::Module;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{
    compress as wire_compress, decompress as wire_decompress, DemandImage, WireError, WireOptions,
};

/// Seeded mutations per payload. Three corpus programs per decoder
/// puts every decoder comfortably past the 1,000-mutation floor.
const MUTATIONS_PER_PAYLOAD: usize = 350;

/// Three small corpus programs (smallest sources compile and mutate
/// fastest; the decoders under attack are the same regardless).
fn test_modules() -> Vec<(&'static str, Module)> {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    suite
        .iter()
        .take(3)
        .map(|b| (b.name, b.compile().expect("corpus programs compile")))
        .collect()
}

/// Runs `decode` over every prefix of `payload` and over the seeded
/// mutation schedule, asserting that no input panics.
fn attack(what: &str, payload: &[u8], seed: u64, decode: impl Fn(&[u8])) {
    for len in 0..payload.len() {
        let prefix = &payload[..len];
        let r = catch_unwind(AssertUnwindSafe(|| decode(prefix)));
        assert!(r.is_ok(), "{what}: decoder panicked on {len}-byte prefix");
    }
    for (i, m) in mutation_schedule(seed, payload.len(), MUTATIONS_PER_PAYLOAD)
        .iter()
        .enumerate()
    {
        let mutated = m.apply(payload);
        let r = catch_unwind(AssertUnwindSafe(|| decode(&mutated)));
        assert!(
            r.is_ok(),
            "{what}: decoder panicked on mutation {i} ({m:?}, seed {seed:#x})"
        );
    }
}

#[test]
fn wire_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let packed = wire_compress(module, WireOptions::default()).expect("wire compress");
        let back = wire_decompress(&packed.bytes).expect("valid image decodes");
        assert_eq!(&back, module, "{name}: wire round-trip not bit-exact");
        attack(
            &format!("wire/{name}"),
            &packed.bytes,
            0x57AB_0000 + i as u64,
            |bytes| {
                let _ = wire_decompress(bytes);
            },
        );
    }
}

#[test]
fn gzip_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        // Gzip the wire image: a realistic, DEFLATE-rich payload.
        let inner = wire_compress(module, WireOptions::default())
            .expect("wire compress")
            .bytes;
        let payload = gzip_compress(&inner, CompressionLevel::Best);
        assert_eq!(
            gzip_decompress(&payload).expect("valid member decodes"),
            inner,
            "{name}: gzip round-trip not bit-exact"
        );
        attack(
            &format!("gzip/{name}"),
            &payload,
            0x6210_0000 + i as u64,
            |bytes| {
                let _ = gzip_decompress(bytes);
            },
        );
    }
}

#[test]
fn demand_image_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let image = DemandImage::build(module, WireOptions::default()).expect("demand build");
        let payload = image.to_bytes();
        assert_eq!(
            DemandImage::from_bytes(&payload)
                .expect("valid image parses")
                .load_all()
                .expect("valid image loads"),
            *module,
            "{name}: demand round-trip not bit-exact"
        );
        // Truncation must be *diagnosed as truncation*: every strict
        // prefix fails cleanly with `Truncated`, never an index panic
        // and never a mistaken structural error.
        for len in 0..payload.len() {
            assert_eq!(
                DemandImage::from_bytes(&payload[..len]).expect_err("prefix must not parse"),
                WireError::Truncated,
                "demand/{name}: {len}-byte prefix misclassified"
            );
        }
        attack(
            &format!("demand/{name}"),
            &payload,
            0xDE4A_0000 + i as u64,
            |bytes| {
                // A mutated image that still parses must also survive
                // full unit decompression.
                if let Ok(img) = DemandImage::from_bytes(bytes) {
                    let _ = img.load_all();
                }
            },
        );
    }
}

#[test]
fn brisc_translator_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let vm = compile_module(module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let payload = image.to_bytes();
        translate(&image).expect("valid image translates");
        attack(
            &format!("brisc-translate/{name}"),
            &payload,
            0xB415_1000 + i as u64,
            |bytes| {
                // The translator decodes the full code stream eagerly,
                // so it reaches bytes the lazy interpreter may never
                // touch; a loadable-but-mutated image must still fail
                // (or succeed) without panicking.
                if let Ok(img) = BriscImage::from_bytes(bytes) {
                    let _ = translate(&img);
                }
            },
        );
    }
}

#[test]
fn brisc_loader_and_interpreter_are_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let vm = compile_module(module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let payload = image.to_bytes();
        assert_eq!(
            BriscImage::from_bytes(&payload).expect("valid image loads"),
            image,
            "{name}: brisc image round-trip not bit-exact"
        );
        attack(
            &format!("brisc/{name}"),
            &payload,
            0xB415_0000 + i as u64,
            |bytes| {
                // A mutated image that still loads must also be safe to
                // *run*: the in-place interpreter decodes lazily, so the
                // loader alone does not exercise the code stream.
                if let Ok(img) = BriscImage::from_bytes(bytes) {
                    if let Ok(mut m) = BriscMachine::new(&img, 1 << 16, 2_048) {
                        let _ = m.run("main", &[]);
                    }
                }
            },
        );
    }
}
