//! Fault-injection harness: every decoder must be *total*.
//!
//! For each corpus program we build the serialized artifacts the
//! toolchain ships — a wire-format image, a function-at-a-time demand
//! image, a gzip member, and a BRISC image (fed to both the lazy
//! interpreter and the eager translator) — then attack each decoder
//! two ways:
//!
//! 1. truncation at **every** prefix boundary of the payload, and
//! 2. ≥ 1,000 seeded mutations (truncations, single-bit flips, random
//!    byte splices) from [`mutation_schedule`].
//!
//! A decoder may reject a mutated input (any error is fine) or accept
//! it (a mutation can be semantically neutral), but it must never
//! panic. Unmutated payloads must round-trip bit-exactly.
//!
//! Everything is deterministic: the mutation streams come from the
//! in-tree xorshift PRNG, so a failing seed reproduces exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use code_compression::brisc::compress::{compress as brisc_compress, BriscOptions};
use code_compression::brisc::entry::DictEntry;
use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::markov::{MarkovTables, BLOCK_START};
use code_compression::brisc::translate::translate;
use code_compression::brisc::BriscImage;
use code_compression::coding::mtf::{
    mtf_decode, mtf_decode_budgeted, mtf_decode_classic, mtf_decode_classic_budgeted, MtfEncoded,
};
use code_compression::core::fault::{assert_decoder_total, XorShift64};
use code_compression::core::{Budget, DecodeLimits};
use code_compression::corpus::benchmarks;
use code_compression::flate::{gzip_compress, gzip_decompress, CompressionLevel};
use code_compression::ir::Module;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{
    compress as wire_compress, decompress as wire_decompress, DemandImage, WireError, WireOptions,
};

/// Seeded mutations per payload. Three corpus programs per decoder
/// puts every decoder comfortably past the 1,000-mutation floor.
const MUTATIONS_PER_PAYLOAD: usize = 350;

/// Three small corpus programs (smallest sources compile and mutate
/// fastest; the decoders under attack are the same regardless).
fn test_modules() -> Vec<(&'static str, Module)> {
    let mut suite = benchmarks();
    suite.sort_by_key(|b| b.source.len());
    suite
        .iter()
        .take(3)
        .map(|b| (b.name, b.compile().expect("corpus programs compile")))
        .collect()
}

/// Runs `decode` over every prefix of `payload` and over the seeded
/// mutation schedule, asserting that no input panics. Thin wrapper
/// over the shared sweep loop in `core::fault`.
fn attack(what: &str, payload: &[u8], seed: u64, decode: impl FnMut(&[u8])) {
    assert_decoder_total(what, payload, seed, MUTATIONS_PER_PAYLOAD, decode);
}

#[test]
fn wire_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let packed = wire_compress(module, WireOptions::default()).expect("wire compress");
        let back = wire_decompress(&packed.bytes).expect("valid image decodes");
        assert_eq!(&back, module, "{name}: wire round-trip not bit-exact");
        attack(
            &format!("wire/{name}"),
            &packed.bytes,
            0x57AB_0000 + i as u64,
            |bytes| {
                let _ = wire_decompress(bytes);
            },
        );
    }
}

#[test]
fn gzip_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        // Gzip the wire image: a realistic, DEFLATE-rich payload.
        let inner = wire_compress(module, WireOptions::default())
            .expect("wire compress")
            .bytes;
        let payload = gzip_compress(&inner, CompressionLevel::Best);
        assert_eq!(
            gzip_decompress(&payload).expect("valid member decodes"),
            inner,
            "{name}: gzip round-trip not bit-exact"
        );
        attack(
            &format!("gzip/{name}"),
            &payload,
            0x6210_0000 + i as u64,
            |bytes| {
                let _ = gzip_decompress(bytes);
            },
        );
    }
}

#[test]
fn demand_image_decoder_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let image = DemandImage::build(module, WireOptions::default()).expect("demand build");
        let payload = image.to_bytes();
        assert_eq!(
            DemandImage::from_bytes(&payload)
                .expect("valid image parses")
                .load_all()
                .expect("valid image loads"),
            *module,
            "{name}: demand round-trip not bit-exact"
        );
        // Truncation must be *diagnosed as truncation*: every strict
        // prefix fails cleanly with `Truncated`, never an index panic
        // and never a mistaken structural error.
        for len in 0..payload.len() {
            assert_eq!(
                DemandImage::from_bytes(&payload[..len]).expect_err("prefix must not parse"),
                WireError::Truncated,
                "demand/{name}: {len}-byte prefix misclassified"
            );
        }
        attack(
            &format!("demand/{name}"),
            &payload,
            0xDE4A_0000 + i as u64,
            |bytes| {
                // A mutated image that still parses must also survive
                // full unit decompression.
                if let Ok(img) = DemandImage::from_bytes(bytes) {
                    let _ = img.load_all();
                }
            },
        );
    }
}

#[test]
fn brisc_translator_is_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let vm = compile_module(module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let payload = image.to_bytes();
        translate(&image).expect("valid image translates");
        attack(
            &format!("brisc-translate/{name}"),
            &payload,
            0xB415_1000 + i as u64,
            |bytes| {
                // The translator decodes the full code stream eagerly,
                // so it reaches bytes the lazy interpreter may never
                // touch; a loadable-but-mutated image must still fail
                // (or succeed) without panicking.
                if let Ok(img) = BriscImage::from_bytes(bytes) {
                    let _ = translate(&img);
                }
            },
        );
    }
}

/// One seeded structural mutation of an already-*decoded* image — the
/// second half of the totality contract: consumers must survive not
/// just hostile bytes but hostile decoded structures (dictionaries,
/// Markov tables, function metadata) handed to them directly.
fn mutate_decoded_image(img: &BriscImage, rng: &mut XorShift64) -> BriscImage {
    let mut m = img.clone();
    match rng.below(9) {
        0 => {
            if !m.dictionary.is_empty() {
                let i = rng.range_usize(0, m.dictionary.len() - 1);
                m.dictionary.remove(i);
            }
        }
        1 => {
            if m.dictionary.len() >= 2 {
                let i = rng.range_usize(0, m.dictionary.len() - 1);
                let j = rng.range_usize(0, m.dictionary.len() - 1);
                m.dictionary[i] = m.dictionary[j].clone();
            }
        }
        2 => {
            // An empty entry violates the serialized invariant; decoded
            // consumers must still reject it without panicking.
            if !m.dictionary.is_empty() {
                let i = rng.range_usize(0, m.dictionary.len() - 1);
                m.dictionary[i] = DictEntry {
                    patterns: Vec::new(),
                };
            }
        }
        3 => {
            // A Markov successor pointing past the dictionary.
            let mut lists: Vec<(u32, Vec<u32>)> = m
                .markov
                .iter_sorted()
                .iter()
                .map(|(c, s)| (*c, s.to_vec()))
                .collect();
            if !lists.is_empty() {
                let i = rng.range_usize(0, lists.len() - 1);
                lists[i].1.push(rng.below(1 << 16) as u32);
            }
            m.markov = MarkovTables::from_lists(lists);
        }
        4 => {
            // Drop a whole context list.
            let mut lists: Vec<(u32, Vec<u32>)> = m
                .markov
                .iter_sorted()
                .iter()
                .map(|(c, s)| (*c, s.to_vec()))
                .collect();
            if !lists.is_empty() {
                let i = rng.range_usize(0, lists.len() - 1);
                lists.remove(i);
            }
            m.markov = MarkovTables::from_lists(lists);
        }
        5 => {
            // Corrupt one function's code bounds.
            if !m.functions.is_empty() {
                let i = rng.range_usize(0, m.functions.len() - 1);
                m.functions[i].start = rng.below(2 * m.code.len() as u64 + 2) as u32;
                m.functions[i].len = rng.below(2 * m.code.len() as u64 + 2) as u32;
            }
        }
        6 => {
            // Bogus extra-leader offsets (wrong contexts at decode).
            if !m.functions.is_empty() {
                let i = rng.range_usize(0, m.functions.len() - 1);
                m.functions[i].extra_leaders = vec![rng.below(1 << 16) as u32];
            }
        }
        7 => {
            // Bit flips inside the code blob.
            if !m.code.is_empty() {
                for _ in 0..4 {
                    let i = rng.range_usize(0, m.code.len() - 1);
                    m.code[i] ^= 1 << rng.below(8);
                }
            }
        }
        _ => {
            let keep = rng.below(m.code.len() as u64 + 1) as usize;
            m.code.truncate(keep);
        }
    }
    m
}

#[test]
fn mutated_decoded_brisc_structures_do_not_panic() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let vm = compile_module(module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let mut rng = XorShift64::new(0xDEC0_0000 + i as u64);
        for step in 0..MUTATIONS_PER_PAYLOAD {
            let mutated = mutate_decoded_image(&image, &mut rng);
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _ = translate(&mutated);
                if let Ok(mut m) = BriscMachine::new(&mutated, 1 << 16, 2_048) {
                    let _ = m.run("main", &[]);
                }
                // The governed path (validation scan + quarantine) must
                // be just as total.
                let limits = DecodeLimits {
                    decode_fuel: 4_096,
                    ..DecodeLimits::default()
                };
                if let Ok(mut m) = BriscMachine::new_governed(&mutated, 1 << 16, 2_048, limits) {
                    let _ = m.run("main", &[]);
                }
            }));
            assert!(
                r.is_ok(),
                "brisc-decoded/{name}: panic on structural mutation {step}"
            );
        }
    }
}

#[test]
fn mutated_mtf_state_does_not_panic() {
    let generous = Budget::default();
    let starved = Budget::new(DecodeLimits {
        decode_fuel: 4,
        max_stream_symbols: 4,
        max_table_entries: 4,
        ..DecodeLimits::default()
    });
    let mut rng = XorShift64::new(0x3A7F_0001);
    for _ in 0..2_000 {
        let n = rng.below(24) as usize;
        let indices: Vec<u32> = (0..n).map(|_| rng.below(40) as u32).collect();
        let tlen = rng.below(12) as usize;
        let table: Vec<u32> = (0..tlen).map(|_| rng.below(300) as u32).collect();
        let enc = MtfEncoded {
            indices: indices.clone(),
            table,
        };
        let alphabet = rng.below(48) as u32;
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = mtf_decode(&enc);
            let _ = mtf_decode_budgeted(&enc, &generous);
            let _ = mtf_decode_budgeted(&enc, &starved);
            let _ = mtf_decode_classic(&indices, alphabet);
            let _ = mtf_decode_classic_budgeted(&indices, alphabet, &generous);
            let _ = mtf_decode_classic_budgeted(&indices, alphabet, &starved);
        }));
        assert!(r.is_ok(), "mtf decoder panicked on fuzzed state");
    }
}

#[test]
fn mutated_markov_tables_do_not_panic() {
    let mut rng = XorShift64::new(0x3A7F_0002);
    for step in 0..1_500 {
        let nlists = rng.below(6) as usize;
        let lists: Vec<(u32, Vec<u32>)> = (0..nlists)
            .map(|_| {
                let ctx = if rng.chance(1, 4) {
                    BLOCK_START
                } else {
                    rng.below(300) as u32
                };
                let n = rng.below(10) as usize;
                (ctx, (0..n).map(|_| rng.below(300) as u32).collect())
            })
            .collect();
        let tables = MarkovTables::from_lists(lists);
        let code: Vec<u8> = (0..rng.below(12)).map(|_| rng.next_u64() as u8).collect();
        // The cursor may start at or past the end of the code.
        let mut pos = rng.below(code.len() as u64 + 3) as usize;
        let ctx = if rng.chance(1, 2) {
            BLOCK_START
        } else {
            rng.below(300) as u32
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = tables.decode_opcode(ctx, &code, &mut pos);
        }));
        assert!(r.is_ok(), "markov decoder panicked on fuzzed tables ({step})");
    }
}

#[test]
fn brisc_loader_and_interpreter_are_total_under_mutation() {
    for (i, (name, module)) in test_modules().iter().enumerate() {
        let vm = compile_module(module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let payload = image.to_bytes();
        assert_eq!(
            BriscImage::from_bytes(&payload).expect("valid image loads"),
            image,
            "{name}: brisc image round-trip not bit-exact"
        );
        attack(
            &format!("brisc/{name}"),
            &payload,
            0xB415_0000 + i as u64,
            |bytes| {
                // A mutated image that still loads must also be safe to
                // *run*: the in-place interpreter decodes lazily, so the
                // loader alone does not exercise the code stream.
                if let Ok(img) = BriscImage::from_bytes(bytes) {
                    if let Ok(mut m) = BriscMachine::new(&img, 1 << 16, 2_048) {
                        let _ = m.run("main", &[]);
                    }
                }
            },
        );
    }
}
