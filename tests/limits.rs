//! Limit-boundary tests for per-call decode governance.
//!
//! For every corpus program and every [`DecodeLimits`] knob, the suite
//! decodes once under a generous budget to learn the *exact* resource
//! footprint (the meters are deterministic), then re-decodes at the
//! exact limit (must succeed), one under it (must trip), and zero.
//! A tripped limit must always surface as a limit error — never as
//! `Corrupt`/`Malformed`, never as a panic — mirroring the
//! `inflate_with_limit` boundary suite in the flate crate.

use code_compression::brisc::compress::{compress as brisc_compress, BriscOptions};
use code_compression::brisc::{BriscError, BriscImage};
use code_compression::core::{telemetry, Budget, DecodeError, DecodeLimits};
use code_compression::corpus::benchmarks;
use code_compression::ir::Module;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{
    compress as wire_compress, decompress_budgeted, DemandError, DemandImage, DemandLoader,
    WireError, WireOptions,
};
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this binary. The budget-gauge test installs
/// the process-global collector mid-run; holding this lock guarantees
/// no sibling test's demand loads publish gauges between its decode
/// and its assertions.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn corpus_modules() -> Vec<(&'static str, Module)> {
    benchmarks()
        .iter()
        .map(|b| (b.name, b.compile().expect("corpus programs compile")))
        .collect()
}

fn assert_limit(result: Result<Module, WireError>, what: &str, name: &str) {
    match result {
        Err(WireError::Limit { .. }) => {}
        other => panic!(
            "{name}: shrunk {what} must trip as WireError::Limit, got {other:?}",
        ),
    }
}

#[test]
fn wire_limits_have_exact_boundaries() {
    let _serial = serial();
    for (name, module) in corpus_modules() {
        let packed = wire_compress(&module, WireOptions::default()).expect("wire compress");

        // Learn the exact footprint under a generous meter.
        let probe = Budget::default();
        let back = decompress_budgeted(&packed.bytes, &probe).expect("valid image decodes");
        assert_eq!(back, module, "{name}: budgeted round-trip not bit-exact");
        let usage = probe.usage();
        assert!(usage.fuel_spent > 0, "{name}: decode spent no fuel");
        assert!(usage.peak_output_bytes > 0);
        assert!(usage.peak_stream_symbols > 0);
        assert!(usage.peak_table_entries > 0);

        // Fuel: exact total passes, one less trips, zero trips.
        let exact = DecodeLimits {
            decode_fuel: usage.fuel_spent,
            ..DecodeLimits::default()
        };
        decompress_budgeted(&packed.bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact fuel limit must pass: {e}"));
        for fuel in [usage.fuel_spent - 1, 0] {
            let limits = DecodeLimits {
                decode_fuel: fuel,
                ..DecodeLimits::default()
            };
            assert_limit(
                decompress_budgeted(&packed.bytes, &Budget::new(limits)),
                "decode fuel",
                name,
            );
        }

        // Output bytes.
        let exact = DecodeLimits {
            max_output_bytes: usage.peak_output_bytes,
            ..DecodeLimits::default()
        };
        decompress_budgeted(&packed.bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact output limit must pass: {e}"));
        for bytes in [usage.peak_output_bytes - 1, 0] {
            let limits = DecodeLimits {
                max_output_bytes: bytes,
                ..DecodeLimits::default()
            };
            assert_limit(
                decompress_budgeted(&packed.bytes, &Budget::new(limits)),
                "output bytes",
                name,
            );
        }

        // Stream symbols.
        let exact = DecodeLimits {
            max_stream_symbols: usage.peak_stream_symbols,
            ..DecodeLimits::default()
        };
        decompress_budgeted(&packed.bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact symbol limit must pass: {e}"));
        let limits = DecodeLimits {
            max_stream_symbols: usage.peak_stream_symbols - 1,
            ..DecodeLimits::default()
        };
        assert_limit(
            decompress_budgeted(&packed.bytes, &Budget::new(limits)),
            "stream symbols",
            name,
        );

        // Table entries.
        let exact = DecodeLimits {
            max_table_entries: usage.peak_table_entries,
            ..DecodeLimits::default()
        };
        decompress_budgeted(&packed.bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact table limit must pass: {e}"));
        let limits = DecodeLimits {
            max_table_entries: usage.peak_table_entries - 1,
            ..DecodeLimits::default()
        };
        assert_limit(
            decompress_budgeted(&packed.bytes, &Budget::new(limits)),
            "table entries",
            name,
        );

        // Pattern nesting depth.
        let exact = DecodeLimits {
            max_pattern_depth: usage.peak_pattern_depth,
            ..DecodeLimits::default()
        };
        decompress_budgeted(&packed.bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact depth limit must pass: {e}"));
        if usage.peak_pattern_depth > 0 {
            let limits = DecodeLimits {
                max_pattern_depth: usage.peak_pattern_depth - 1,
                ..DecodeLimits::default()
            };
            assert_limit(
                decompress_budgeted(&packed.bytes, &Budget::new(limits)),
                "pattern depth",
                name,
            );
        }
    }
}

#[test]
fn brisc_limits_trip_cleanly() {
    let _serial = serial();
    for (name, module) in corpus_modules() {
        let vm = compile_module(&module, IsaConfig::full()).expect("codegen");
        let image = brisc_compress(&vm, BriscOptions::default())
            .expect("brisc compress")
            .image;
        let bytes = image.to_bytes();

        let probe = Budget::default();
        let back = BriscImage::from_bytes_budgeted(&bytes, &probe).expect("valid image loads");
        assert_eq!(back, image, "{name}: budgeted brisc round-trip differs");
        let usage = probe.usage();
        assert!(usage.fuel_spent > 0 && usage.peak_table_entries > 0);

        // Exact limits pass.
        let exact = DecodeLimits {
            decode_fuel: usage.fuel_spent,
            max_table_entries: usage.peak_table_entries,
            max_output_bytes: usage.peak_output_bytes,
            ..DecodeLimits::default()
        };
        BriscImage::from_bytes_budgeted(&bytes, &Budget::new(exact))
            .unwrap_or_else(|e| panic!("{name}: exact brisc limits must pass: {e}"));

        // Shrunk limits trip as Limit, never Corrupt.
        for limits in [
            DecodeLimits {
                decode_fuel: usage.fuel_spent - 1,
                ..DecodeLimits::default()
            },
            DecodeLimits {
                max_table_entries: usage.peak_table_entries - 1,
                ..DecodeLimits::default()
            },
            DecodeLimits {
                decode_fuel: 0,
                ..DecodeLimits::default()
            },
        ] {
            match BriscImage::from_bytes_budgeted(&bytes, &Budget::new(limits)) {
                Err(BriscError::Limit { .. }) => {}
                other => panic!("{name}: shrunk brisc limit must trip as Limit, got {other:?}"),
            }
        }
    }
}

#[test]
fn shrunk_limits_never_misreport_as_malformed() {
    let _serial = serial();
    // Half the real footprint on every knob at once: the decode must
    // fail, and the failure class must be Limit for every corpus
    // program (a misclassification here would break retry-with-larger-
    // budget recovery).
    for (name, module) in corpus_modules() {
        let packed = wire_compress(&module, WireOptions::default()).expect("wire compress");
        let probe = Budget::default();
        decompress_budgeted(&packed.bytes, &probe).expect("valid image decodes");
        let usage = probe.usage();
        let limits = DecodeLimits {
            decode_fuel: usage.fuel_spent / 2,
            max_output_bytes: (usage.peak_output_bytes / 2).max(1),
            max_stream_symbols: (usage.peak_stream_symbols / 2).max(1),
            max_table_entries: (usage.peak_table_entries / 2).max(1),
            ..DecodeLimits::default()
        };
        assert_limit(
            decompress_budgeted(&packed.bytes, &Budget::new(limits)),
            "combined shrunk limits",
            name,
        );
    }
}

#[test]
fn corrupt_function_quarantined_module_survives_corpus_wide() {
    let _serial = serial();
    // The acceptance scenario: one corrupted function per corpus
    // program; every other function still demand-loads, and running
    // main either succeeds (corrupt function unreached) or traps with
    // a clean quarantine error naming it.
    for (name, module) in corpus_modules() {
        let image = DemandImage::build(&module, WireOptions::default()).expect("demand build");
        let names: Vec<String> = image.names().map(str::to_string).collect();
        let Some(victim) = names.iter().rev().find(|n| *n != "main") else {
            continue; // single-function program: nothing to corrupt around
        };

        // Corrupt the victim's unit inside the *serialized* image: the
        // unit is a wire image starting with the CCWF magic, so
        // clobbering its first byte guarantees a decode failure without
        // disturbing the outer container.
        let unit = image.unit_bytes(victim).expect("unit exists").to_vec();
        let serialized = image.to_bytes();
        let pos = serialized
            .windows(unit.len())
            .position(|w| w == unit)
            .expect("unit bytes appear in the serialized image");
        let mut corrupted = serialized.clone();
        corrupted[pos] ^= 0xFF;
        let image = DemandImage::from_bytes(&corrupted).expect("outer container still parses");

        // Salvage scan poisons exactly the victim.
        let scan = image.salvage_scan(DecodeLimits::default());
        assert_eq!(
            scan.poisoned.len(),
            1,
            "{name}: expected exactly one poisoned unit, got {:?}",
            scan.poisoned
        );
        assert_eq!(scan.poisoned[0].0, *victim, "{name}");
        assert_eq!(scan.salvageable.len(), names.len() - 1, "{name}");

        // Every other function demand-loads; the victim quarantines.
        let mut loader = DemandLoader::new(&image, DecodeLimits::default());
        for n in names.iter().filter(|n| *n != victim) {
            loader
                .demand(n)
                .unwrap_or_else(|e| panic!("{name}: function {n} must load: {e}"));
        }
        match loader.demand(victim) {
            Err(DemandError::Quarantined { name: q, .. }) => assert_eq!(q, *victim),
            other => panic!("{name}: victim must quarantine, got {other:?}"),
        }

        // Running main must either succeed or trap cleanly on the
        // quarantined function — never any other failure class.
        let mut runner = DemandLoader::new(&image, DecodeLimits::default());
        match runner.run("main", &[], 1 << 22, 1 << 28) {
            Ok(_) => {}
            Err(DemandError::Quarantined { name: q, .. }) => assert_eq!(q, *victim, "{name}"),
            Err(other) => panic!("{name}: unexpected failure class: {other}"),
        }
        let report = runner.report();
        assert!(
            report.resident.iter().any(|r| r == "main"),
            "{name}: main must be resident after a run attempt"
        );
    }
}

#[test]
fn limit_quarantine_is_recoverable_corpus_wide() {
    let _serial = serial();
    // A function that only failed on limits must re-demand successfully
    // once the budget is raised (retry_with), for every corpus program.
    for (name, module) in corpus_modules() {
        let image = DemandImage::build(&module, WireOptions::default()).expect("demand build");
        let starved = DecodeLimits {
            decode_fuel: 0,
            ..DecodeLimits::default()
        };
        let mut loader = DemandLoader::new(&image, starved);
        match loader.demand("main") {
            Err(DemandError::Quarantined {
                cause: DecodeError::LimitExceeded { .. },
                ..
            }) => {}
            other => panic!("{name}: starved demand must quarantine on limits, got {other:?}"),
        }
        loader
            .retry_with("main", DecodeLimits::default())
            .unwrap_or_else(|e| panic!("{name}: retry with raised budget must succeed: {e}"));
        let report = loader.report();
        assert!(report.quarantined.is_empty(), "{name}: {report:?}");
        assert!(report.resident.iter().any(|r| r == "main"), "{name}");

        // And the recovered module actually runs.
        match loader.run("main", &[], 1 << 22, 1 << 28) {
            Ok(_) | Err(DemandError::Exec(_)) => {}
            Err(other) => panic!("{name}: unexpected failure class after recovery: {other}"),
        }
    }
}

#[test]
fn budget_gauges_mirror_deterministic_meters_corpus_wide() {
    // One shared budget decodes the whole corpus; after an explicit
    // publish, every `limits.*` gauge must equal the deterministic
    // meter bit for bit. The serial lock plus install-here-only means
    // no other budget can publish between the decode and the asserts.
    let _serial = serial();
    assert!(
        telemetry::install(telemetry::Collector::metrics_only()),
        "this test must be the binary's only collector installer"
    );
    let budget = Budget::default();
    for (name, module) in corpus_modules() {
        let packed = wire_compress(&module, WireOptions::default()).expect("wire compress");
        let back = decompress_budgeted(&packed.bytes, &budget)
            .unwrap_or_else(|e| panic!("{name}: corpus decode: {e}"));
        assert_eq!(back, module, "{name}");
    }
    budget.publish_telemetry();

    let snap = telemetry::collector()
        .expect("collector installed above")
        .metrics
        .snapshot();
    let usage = budget.usage();
    let gauge = |n: &str| snap.gauge(n).unwrap_or_else(|| panic!("gauge {n} missing"));
    assert_eq!(gauge("limits.fuel_spent"), usage.fuel_spent);
    assert_eq!(gauge("limits.resident_bytes"), usage.resident_bytes);
    assert_eq!(gauge("limits.peak_resident_bytes"), usage.peak_resident_bytes);
    assert_eq!(gauge("limits.peak_output_bytes"), usage.peak_output_bytes);
    assert_eq!(gauge("limits.peak_stream_symbols"), usage.peak_stream_symbols);
    assert_eq!(
        gauge("limits.peak_pattern_depth"),
        u64::from(usage.peak_pattern_depth)
    );
    assert_eq!(gauge("limits.peak_table_entries"), usage.peak_table_entries);
    assert!(usage.fuel_spent > 0, "whole-corpus decode must spend fuel");
}

#[test]
fn wall_clock_deadline_has_exact_boundaries() {
    use std::time::{Duration, Instant};
    let _serial = serial();
    for (name, module) in corpus_modules() {
        let packed = wire_compress(&module, WireOptions::default()).expect("wire compress");

        // A generous deadline admits the whole decode.
        let roomy = Budget::default().with_deadline(Duration::from_secs(3600));
        let back = decompress_budgeted(&packed.bytes, &roomy)
            .unwrap_or_else(|e| panic!("{name}: roomy deadline must pass: {e}"));
        assert_eq!(back, module, "{name}");

        // An already-expired deadline trips as a limit — never as
        // Corrupt/Malformed — before any meter moves.
        let now = Instant::now();
        let expired = Budget::default().with_deadline_at(now - Duration::from_nanos(1), Duration::ZERO);
        assert_limit(
            decompress_budgeted(&packed.bytes, &expired),
            "wall-clock deadline",
            name,
        );

        // Exact boundary: at the deadline instant the budget still
        // admits work; one nanosecond past, it refuses.
        let b = Budget::default().with_deadline_at(now, Duration::from_secs(9));
        b.check_deadline_at(now)
            .unwrap_or_else(|e| panic!("{name}: now == deadline must pass: {e}"));
        match b.check_deadline_at(now + Duration::from_nanos(1)) {
            Err(DecodeError::LimitExceeded { what, limit }) => {
                assert_eq!(what, "wall-clock deadline", "{name}");
                assert_eq!(limit, 9_000_000_000, "{name}: error reports granted nanos");
            }
            other => panic!("{name}: past-deadline check must trip as a limit, got {other:?}"),
        }
    }
}
