//! Whole-pipeline telemetry integration tests.
//!
//! This binary owns the process-global collector: the big sequential
//! test installs a ring-buffer trace sink once and then drives every
//! stage — front, wire, flate, vm, brisc, demand loading, limits,
//! fault injection — asserting that the metrics registry and the trace
//! stream describe exactly what happened. The remaining tests are pure
//! (they build `TraceEvent`s by hand and never touch global state), so
//! the exact-count assertions in the big test cannot race.

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::core::fault::Mutation;
use code_compression::core::telemetry::{
    self, validate_trace_line, Collector, FieldValue, RingSink, TraceEvent, TraceKind,
};
use code_compression::core::{Budget, DecodeLimits};
use code_compression::corpus::benchmarks;
use code_compression::flate::{deflate_compress, inflate, CompressionLevel};
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{
    compress as wire_compress, decompress_budgeted, DemandError, DemandImage, DemandLoader,
    WireOptions,
};
use std::sync::Arc;

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 32;

#[test]
fn whole_pipeline_populates_metrics_and_trace() {
    let ring = Arc::new(RingSink::new(65_536));
    assert!(
        telemetry::install(Collector::with_trace(ring.clone())),
        "this binary must be the only installer"
    );
    assert!(telemetry::enabled());
    let metrics = || {
        telemetry::collector()
            .expect("collector installed above")
            .metrics
            .snapshot()
    };

    // Front + wire encode + budgeted decode over the whole corpus.
    let mut last_total = 0u64;
    let budget = Budget::default();
    for b in benchmarks() {
        let module = b.compile().expect("corpus compiles");
        let packed = wire_compress(&module, WireOptions::default()).expect("wire pack");
        last_total = packed.total() as u64;
        let back = decompress_budgeted(&packed.bytes, &budget).expect("budgeted decode");
        assert_eq!(back, module);
    }
    let snap = metrics();
    assert!(snap.counter("front.tokens").unwrap() > 0);
    assert_eq!(
        snap.counter("front.modules").unwrap(),
        benchmarks().len() as u64
    );
    assert_eq!(
        snap.counter("wire.encode.modules").unwrap(),
        benchmarks().len() as u64
    );
    let ir_nodes: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("ir.nodes."))
        .map(|&(_, v)| v)
        .sum();
    assert!(ir_nodes > 0, "operator-class node counts must accumulate");
    assert!(snap.counter("coding.huffman.bits_emitted").unwrap() > 0);
    assert!(snap.counter("coding.mtf.hits").unwrap() > 0);
    assert!(snap.counter("coding.mtf.misses").unwrap() > 0);
    assert!(snap.histogram("coding.mtf.hit_distance").unwrap().count > 0);

    // The --stats contract: per-section byte gauges plus the container
    // gauge sum exactly to the encoded module size (last encode wins
    // the gauges, so compare against the last module packed).
    assert_eq!(snap.gauge("wire.encode.total_bytes").unwrap(), last_total);
    let section_sum: u64 = snap
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("wire.encode.section_bytes."))
        .map(|&(_, v)| v)
        .sum::<u64>()
        + snap.gauge("wire.encode.container_bytes").unwrap();
    assert_eq!(
        section_sum, last_total,
        "section byte gauges must sum exactly to the wire-module size"
    );

    // Budget gauges mirror the shared meter exactly.
    budget.publish_telemetry();
    let snap = metrics();
    let usage = budget.usage();
    assert_eq!(snap.gauge("limits.fuel_spent").unwrap(), usage.fuel_spent);
    assert_eq!(
        snap.gauge("limits.peak_output_bytes").unwrap(),
        usage.peak_output_bytes
    );

    // Flate: an instrumented deflate/inflate round-trip attributes
    // every output byte.
    let payload: Vec<u8> = benchmarks()
        .iter()
        .flat_map(|b| b.source.as_bytes().iter().copied())
        .collect();
    let before = metrics();
    let compressed = deflate_compress(&payload, CompressionLevel::Best);
    let back = inflate(&compressed).expect("inflates");
    assert_eq!(back, payload);
    let after = metrics();
    assert_eq!(
        after.counter("flate.inflate.output_bytes").unwrap()
            - before.counter("flate.inflate.output_bytes").unwrap_or(0),
        payload.len() as u64
    );
    assert!(after.counter("flate.deflate.match_tokens").unwrap() > 0);
    assert!(after.histogram("flate.deflate.probe_depth").unwrap().count > 0);
    assert!(after.histogram("flate.inflate.match_len").unwrap().count > 0);

    // VM codegen + brisc: dispatch counters match the machine's own
    // instruction accounting exactly.
    let module = benchmarks()[0].compile().expect("compiles");
    let vm = compile_module(&module, IsaConfig::full()).expect("codegen");
    let snap = metrics();
    assert!(snap.counter("vm.codegen.instrs").unwrap() > 0);
    let report = brisc_compress(&vm, BriscOptions::default()).expect("brisc pack");
    let before = metrics();
    let mut machine = BriscMachine::new(&report.image, MEM, FUEL).expect("machine");
    let outcome = machine.run("main", &[]).expect("runs");
    let after = metrics();
    assert_eq!(
        after.counter("brisc.interp.dispatches").unwrap()
            - before.counter("brisc.interp.dispatches").unwrap_or(0),
        outcome.instructions
    );
    assert!(
        after.counter("brisc.interp.fuel_consumed").unwrap()
            > before.counter("brisc.interp.fuel_consumed").unwrap_or(0)
    );
    assert!(after.gauge("brisc.dictionary_entries").unwrap() > 0);

    // Limit trips and fault mutations land in the trace.
    let packed = wire_compress(&module, WireOptions::default()).expect("wire pack");
    let starved = Budget::new(DecodeLimits {
        decode_fuel: 0,
        ..DecodeLimits::default()
    });
    assert!(decompress_budgeted(&packed.bytes, &starved).is_err());
    let _ = Mutation::BitFlip { offset: 0, bit: 3 }.apply(&packed.bytes);

    // Demand-side quarantine events.
    let image = DemandImage::build(&module, WireOptions::default()).expect("demand build");
    let mut loader = DemandLoader::new(
        &image,
        DecodeLimits {
            decode_fuel: 0,
            ..DecodeLimits::default()
        },
    );
    match loader.demand("main") {
        Err(DemandError::Quarantined { .. }) => {}
        other => panic!("starved demand must quarantine, got {other:?}"),
    }

    // Every recorded trace line is schema-valid, and the span/event
    // taxonomy contains what the run just did.
    let events = ring.dump();
    assert!(!events.is_empty());
    for e in &events {
        let line = e.to_json_line();
        validate_trace_line(&line).unwrap_or_else(|err| panic!("bad trace line {line:?}: {err}"));
    }
    let has = |kind: TraceKind, name: &str| {
        events.iter().any(|e| e.kind == kind && e.name == name)
    };
    assert!(has(TraceKind::SpanBegin, "front.compile"));
    assert!(has(TraceKind::SpanEnd, "front.compile"));
    assert!(has(TraceKind::SpanBegin, "wire.compress"));
    assert!(has(TraceKind::SpanEnd, "wire.compress"));
    assert!(has(TraceKind::SpanBegin, "wire.decompress"));
    assert!(has(TraceKind::SpanBegin, "brisc.compress"));
    assert!(has(TraceKind::SpanBegin, "brisc.run"));
    assert!(has(TraceKind::Event, "limit.trip"));
    assert!(has(TraceKind::Event, "fault.mutation"));
    assert!(has(TraceKind::Event, "demand.quarantine"));

    // The limit.trip event names the knob that refused.
    let trip = events
        .iter()
        .find(|e| e.name == "limit.trip")
        .expect("trip recorded");
    assert!(trip
        .fields
        .iter()
        .any(|(k, v)| *k == "what" && *v == FieldValue::Str("decode fuel".into())));

    // Span ends carry durations; begins never do.
    for e in &events {
        match e.kind {
            TraceKind::SpanEnd => assert!(e.dur_nanos.is_some(), "{}", e.name),
            _ => assert!(e.dur_nanos.is_none(), "{}", e.name),
        }
    }
}

/// Golden JSON-lines schema: the exact serialized bytes are pinned so
/// external consumers can rely on them PR over PR.
#[test]
fn trace_schema_golden_lines() {
    let span_begin = TraceEvent {
        t_nanos: 12,
        kind: TraceKind::SpanBegin,
        name: "wire.compress".into(),
        dur_nanos: None,
        fields: Vec::new(),
    };
    assert_eq!(
        span_begin.to_json_line(),
        r#"{"t":12,"kind":"span_begin","name":"wire.compress"}"#
    );
    let span_end = TraceEvent {
        t_nanos: 99,
        kind: TraceKind::SpanEnd,
        name: "wire.compress".into(),
        dur_nanos: Some(87),
        fields: Vec::new(),
    };
    assert_eq!(
        span_end.to_json_line(),
        r#"{"t":99,"kind":"span_end","name":"wire.compress","dur":87}"#
    );
    let event = TraceEvent {
        t_nanos: 7,
        kind: TraceKind::Event,
        name: "demand.quarantine".into(),
        dur_nanos: None,
        fields: vec![
            ("function", FieldValue::Str("salt".into())),
            ("fatal", FieldValue::Bool(false)),
            ("bytes", FieldValue::U64(41)),
        ],
    };
    assert_eq!(
        event.to_json_line(),
        r#"{"t":7,"kind":"event","name":"demand.quarantine","fields":{"function":"salt","fatal":false,"bytes":41}}"#
    );
    for e in [&span_begin, &span_end, &event] {
        validate_trace_line(&e.to_json_line()).expect("golden lines validate");
    }
}

#[test]
fn validator_rejects_foreign_lines() {
    for bad in [
        "",
        "not json",
        r#"{"kind":"event","name":"x"}"#,                      // missing t
        r#"{"t":1,"kind":"event"}"#,                           // missing name
        r#"{"t":1,"kind":"event","name":""}"#,                 // empty name
        r#"{"t":1,"kind":"weird","name":"x"}"#,                // bad kind
        r#"{"t":1,"kind":"event","name":"x","dur":5}"#,        // dur on non-end
        r#"{"t":1,"kind":"span_end","name":"x"}"#,             // end without dur
        r#"{"t":1,"kind":"event","name":"x","extra":true}"#,   // unknown key
        r#"{"t":1,"kind":"event","name":"x","fields":[1,2]}"#, // fields not object
    ] {
        assert!(
            validate_trace_line(bad).is_err(),
            "line must be rejected: {bad:?}"
        );
    }
}
