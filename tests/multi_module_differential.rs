//! Differential round-trip for multi-module synthetic programs.
//!
//! The corpus synthesizer emits translation units that share a
//! byte-identical prelude (the repetition that makes cross-module
//! decode-table interning observable) on top of module-private
//! functions with deep expression spines. Every unit must round-trip
//! byte-exactly through the wire encoder → decoder at every option
//! combination, whether the decode-structure caches are cold, warm
//! from the same module, or warm with the *other* modules' tables —
//! caching must be unobservable in decoder output.

use code_compression::coding::huffman::clear_decoder_cache;
use code_compression::corpus::{synthetic_modules, MultiModuleConfig};
use code_compression::flate::inflate::clear_table_cache;
use code_compression::front::compile;
use code_compression::ir::binary::encode_module;
use code_compression::ir::Module;
use code_compression::wire::{
    clear_pattern_table_cache, compress, decompress, Coder, WireOptions,
};

fn clear_all_decode_caches() {
    clear_decoder_cache();
    clear_table_cache();
    clear_pattern_table_cache();
}

/// Every pipeline-stage combination the container can express.
fn option_matrix() -> Vec<(&'static str, WireOptions)> {
    vec![
        ("default", WireOptions::default()),
        (
            "raw-coder",
            WireOptions {
                coder: Coder::Raw,
                ..WireOptions::default()
            },
        ),
        (
            "arith-coder",
            WireOptions {
                coder: Coder::Arithmetic,
                ..WireOptions::default()
            },
        ),
        (
            "no-mtf",
            WireOptions {
                mtf: false,
                ..WireOptions::default()
            },
        ),
        (
            "no-deflate",
            WireOptions {
                deflate: false,
                ..WireOptions::default()
            },
        ),
        (
            "mixed-stream",
            WireOptions {
                split_streams: false,
                ..WireOptions::default()
            },
        ),
    ]
}

fn synthetic_program(seed: u64) -> Vec<Module> {
    let sources = synthetic_modules(
        seed,
        MultiModuleConfig {
            modules: 3,
            shared_functions: 6,
            functions_per_module: 10,
            statements_per_function: 5,
            globals: 3,
            max_expr_depth: 5,
        },
    );
    sources
        .iter()
        .map(|src| compile(src).expect("synthetic module compiles"))
        .collect()
}

/// Asserts `decoded` is byte-exactly the module that was encoded: the
/// IR trees compare equal *and* their binary serializations match.
fn assert_byte_exact(context: &str, original: &Module, decoded: &Module) {
    assert_eq!(decoded, original, "{context}: decoded module differs");
    assert_eq!(
        encode_module(decoded).expect("re-encode decoded"),
        encode_module(original).expect("re-encode original"),
        "{context}: binary serialization differs"
    );
}

#[test]
fn multi_module_round_trips_at_every_option_combination() {
    let modules = synthetic_program(0x00DD_BA11);
    for (oname, options) in option_matrix() {
        let images: Vec<Vec<u8>> = modules
            .iter()
            .map(|m| compress(m, options).expect("compress").bytes)
            .collect();
        for (i, (module, image)) in modules.iter().zip(&images).enumerate() {
            // Cold: every decode structure is a per-section rebuild.
            clear_all_decode_caches();
            let cold = decompress(image).expect("cold decode");
            assert_byte_exact(&format!("{oname}/module{i}/cold"), module, &cold);
            // Warm from the same module.
            let warm = decompress(image).expect("warm decode");
            assert_byte_exact(&format!("{oname}/module{i}/warm"), module, &warm);
        }
        // Cross-module warm: decode every unit with the caches full of
        // the *other* units' tables — the shared prelude means most
        // lookups hit entries another module interned, and they must
        // be indistinguishable from fresh rebuilds.
        clear_all_decode_caches();
        for round in 0..2 {
            for (i, (module, image)) in modules.iter().zip(&images).enumerate() {
                let got = decompress(image).expect("cross-module decode");
                assert_byte_exact(&format!("{oname}/module{i}/cross-round{round}"), module, &got);
            }
        }
    }
}

#[test]
fn multi_module_round_trip_is_seed_stable() {
    // A second seed, default options only: guards against the synth
    // generator drifting into programs the wire pipeline mishandles.
    for seed in [1u64, 0xFEED_5EED] {
        let modules = synthetic_program(seed);
        clear_all_decode_caches();
        for (i, module) in modules.iter().enumerate() {
            let image = compress(module, WireOptions::default())
                .expect("compress")
                .bytes;
            let back = decompress(&image).expect("decode");
            assert_byte_exact(&format!("seed{seed:#x}/module{i}"), module, &back);
        }
    }
}
