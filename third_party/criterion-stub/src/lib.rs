//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace must build with `--offline` and no registry cache, so
//! the real criterion crate can never be resolved. This stub is patched
//! over `crates.io` in the workspace manifest and mirrors the small API
//! surface `benches/microbench.rs` uses: the `criterion_group!` /
//! `criterion_main!` macros, the `Criterion` builder, benchmark groups,
//! `Throughput`, and `Bencher::iter`. Measurements are simple wall-clock
//! medians — good enough for a smoke signal, not for publication-grade
//! statistics. Delete the `[patch.crates-io]` entry to use the real
//! crate where a registry is reachable.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness configuration, mirroring criterion's builder.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (per-sample budget here).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            config: self.clone(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    config: Criterion,
}

impl BenchmarkGroup {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints a single-line summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { median: None };
        // Warm-up pass, then `sample_size` timed samples.
        f(&mut bencher);
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            f(&mut bencher);
            if let Some(m) = bencher.median.take() {
                samples.push(m);
            }
        }
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        let rate = self.throughput.and_then(|t| match t {
            Throughput::Bytes(b) => rate_str(b, median, "B/s"),
            Throughput::Elements(e) => rate_str(e, median, "elem/s"),
        });
        match rate {
            Some(r) => println!("{}/{id}: {median:?}/iter ({r})", self.name),
            None => println!("{}/{id}: {median:?}/iter", self.name),
        }
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

fn rate_str(units: u64, per_iter: Duration, suffix: &str) -> Option<String> {
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return None;
    }
    Some(format!("{:.3e} {suffix}", units as f64 / secs))
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    median: Option<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` and records the per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to settle caches, then a short timed batch.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u32;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= 3 && start.elapsed() >= Duration::from_millis(1) {
                break;
            }
            if iters == u32::MAX {
                break;
            }
        }
        self.median = Some(start.elapsed() / iters);
    }
}

/// Opaque value sink preventing the optimizer from deleting the work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
